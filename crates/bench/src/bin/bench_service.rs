//! **Serving trajectory point**: the sharded job server under a seeded
//! arrival storm.
//!
//! Emits `BENCH_service.json` (override with `--out <path>`) with:
//!
//! - `throughput` — jobs/sec over the storm, plus the peak and sustained
//!   (median-at-completion) number of jobs in flight;
//! - `latency` — p50/p95/p99 per-round wall latency across every shard,
//!   measured while jobs time-share shard threads;
//! - `migration` — median snapshot-serialize and restore cost of the
//!   seeded migration schedule, and the serialized snapshot size;
//! - `pool` — workspace-pool hit/miss/return/eviction counters;
//! - `exactness` — every served job is re-run solo and byte-compared
//!   (report and telemetry log); **any violation aborts the benchmark**,
//!   so a committed JSON is itself proof the scheduler never perturbed a
//!   single output bit;
//! - `recovery` — the crash-safety trajectory point: the same burst is
//!   served once plain and once with a durable `marsit-journal/1` log
//!   (their wall ratio is the journal overhead, asserted ≤ 1.25× in full
//!   mode), then the journal is torn at ~60% of its bytes and replayed
//!   (records/s), one resumable job is restored and stepped
//!   (time-to-first-resumed-round), and the recovered serve is
//!   re-verified bit-exact;
//! - `meta` — run provenance.
//!
//! The storm is a seeded Poisson process: an initial burst saturates the
//! shards, then the remaining jobs arrive with exponential gaps. Every
//! schedule decision downstream of the seed is deterministic; only the
//! wall-clock numbers vary between hosts.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin bench_service [-- --fast] [-- --out PATH]
//! ```
//!
//! `--fast` shrinks the job count and round budgets for CI smoke runs; the
//! JSON schema is identical in both modes (`"mode"` records which ran).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use marsit_models::Workload;
use marsit_serve::{
    plan_from_replay, quantile_ns, replay_bytes, verify_outcome, verify_recovered, JobServer,
    JobSpec, JournalWriter, MigrationPolicy, ServeConfig,
};
use marsit_simnet::{FaultPlan, Topology};
use marsit_telemetry::Telemetry;
use marsit_tensor::rng::FastRng;
use marsit_trainsim::{TrainSnapshot, TrainerState};

struct Sizes {
    mode: &'static str,
    jobs: usize,
    burst: usize,
    rounds: usize,
    shards: usize,
    arrival_mean_ms: f64,
}

const FULL: Sizes = Sizes {
    mode: "full",
    jobs: 24,
    burst: 10,
    rounds: 24,
    shards: 4,
    arrival_mean_ms: 30.0,
};

const FAST: Sizes = Sizes {
    mode: "fast",
    jobs: 10,
    burst: 8,
    rounds: 8,
    shards: 3,
    arrival_mean_ms: 10.0,
};

const ARRIVAL_SEED: u64 = 0x5EED_5709;
const MIGRATION_SEED: u64 = 0xA11_0CA7E;
const MIGRATION_PER_MILLE: u32 = 250;

/// `git describe` of the tree this binary runs in (see `bench_round`).
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The deterministic job mix: three shapes (two ring widths and a torus)
/// cycled across the storm, every fourth job fault-injected, every job
/// with its own seed so no two are byte-identical to each other.
fn job_mix(i: usize, rounds: usize) -> JobSpec {
    let (workload, topology) = match i % 3 {
        0 => (Workload::AlexNetMnist, Topology::ring(4)),
        1 => (Workload::ResNet20Cifar10, Topology::torus(2, 2)),
        _ => (Workload::AlexNetMnist, Topology::ring(8)),
    };
    let mut spec = JobSpec::new(format!("job{i:03}"), workload, topology);
    spec.rounds = rounds;
    spec.seed = 100 + i as u64;
    spec.k = if i.is_multiple_of(2) { Some(5) } else { None };
    if i % 4 == 3 {
        spec.fault_plan = FaultPlan::seeded(i as u64).with_link_drop(0.05);
    }
    spec
}

fn median(sorted: &[u64]) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[sorted.len() / 2]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = if args.iter().any(|a| a == "--fast") {
        FAST
    } else {
        FULL
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_service.json", String::as_str);

    let mut cfg = ServeConfig::new(sizes.shards);
    cfg.tick_rounds = 2;
    cfg.migration = MigrationPolicy::Seeded {
        seed: MIGRATION_SEED,
        per_mille: MIGRATION_PER_MILLE,
    };
    println!(
        "bench_service ({}): {} jobs over {} shards, burst {}, mean gap {:.0}ms, \
         seeded migration {}/1000 per tick",
        sizes.mode, sizes.jobs, cfg.shards, sizes.burst, sizes.arrival_mean_ms, MIGRATION_PER_MILLE
    );

    // --- The storm: burst, then seeded Poisson arrivals. ---
    let specs: Vec<JobSpec> = (0..sizes.jobs).map(|i| job_mix(i, sizes.rounds)).collect();
    let mut arrivals = FastRng::new(ARRIVAL_SEED, 0);
    let wall = Instant::now();
    let mut handle = JobServer::start(cfg);
    for (i, spec) in specs.iter().enumerate() {
        if i >= sizes.burst {
            let u = arrivals.next_f64().clamp(1e-9, 1.0 - 1e-9);
            let gap_ms = -sizes.arrival_mean_ms * (1.0 - u).ln();
            std::thread::sleep(std::time::Duration::from_micros((gap_ms * 1e3) as u64));
        }
        handle.submit(spec.clone());
    }
    let report = handle.finish();
    let wall_s = wall.elapsed().as_secs_f64();
    assert_eq!(report.outcomes.len(), sizes.jobs);

    let jobs_per_sec = sizes.jobs as f64 / wall_s;
    let lat = report.round_latencies_sorted();
    let (p50, p95, p99) = (
        quantile_ns(&lat, 0.5),
        quantile_ns(&lat, 0.95),
        quantile_ns(&lat, 0.99),
    );
    println!(
        "served {} jobs in {wall_s:.2}s ({jobs_per_sec:.1} jobs/s) | \
         in flight peak {} sustained {} | round p50/p95/p99 {:.1}/{:.1}/{:.1} us",
        sizes.jobs,
        report.peak_in_flight,
        report.sustained_in_flight,
        p50 as f64 / 1e3,
        p95 as f64 / 1e3,
        p99 as f64 / 1e3,
    );
    assert!(
        report.sustained_in_flight >= 4,
        "the storm must sustain at least 4 concurrent jobs (got {})",
        report.sustained_in_flight
    );

    let samples = report.migration_samples();
    let mut snap_ns: Vec<u64> = samples.iter().map(|s| s.snapshot_ns).collect();
    let mut restore_ns: Vec<u64> = samples.iter().map(|s| s.restore_ns).collect();
    let mut snap_bytes: Vec<u64> = samples.iter().map(|s| s.snapshot_bytes as u64).collect();
    snap_ns.sort_unstable();
    restore_ns.sort_unstable();
    snap_bytes.sort_unstable();
    let migrations: u32 = report.outcomes.iter().map(|o| o.migrations).sum();
    println!(
        "migrations: {migrations} | snapshot p50 {:.1} us, restore p50 {:.1} us, \
         {} bytes median",
        median(&snap_ns) as f64 / 1e3,
        median(&restore_ns) as f64 / 1e3,
        median(&snap_bytes),
    );

    let pool = report.pool_stats();
    println!(
        "pool: {} hits / {} checkouts ({:.0}%), {} returns, {} evictions",
        pool.hits,
        pool.hits + pool.misses,
        pool.hit_rate() * 100.0,
        pool.returns,
        pool.evictions
    );

    // --- Bit-exactness: every served job vs a fresh solo run. ---
    //
    // This is the hard guarantee the whole server stands on. A violation
    // panics (no JSON is written), so the committed artifact doubles as a
    // certificate.
    let verify_wall = Instant::now();
    let mut violations = 0usize;
    for outcome in &report.outcomes {
        if let Err(e) = verify_outcome(outcome) {
            violations += 1;
            eprintln!("BIT-EXACTNESS VIOLATION: {e}");
        }
    }
    assert_eq!(
        violations, 0,
        "scheduler perturbed {violations} job(s); refusing to write {out_path}"
    );
    println!(
        "exactness: {}/{} jobs byte-identical to solo runs (verified in {:.2}s)",
        sizes.jobs,
        sizes.jobs,
        verify_wall.elapsed().as_secs_f64()
    );

    // --- Recovery: journal overhead, torn-tail replay, resume latency. ---
    //
    // Arrival sleeps would drown the journal cost, so both overhead runs
    // burst-submit everything and measure pure serving wall time. The
    // overhead pair runs the untouched default serving config (steady
    // state: 4-round ticks, a snapshot every 4 ticks), interleaved and
    // median-of-5 (3 in fast mode) because this box may be a single noisy
    // core whose baseline wanders between repetitions; a separate
    // snapshot-every-tick run then produces the snapshot-rich journal the
    // tear/replay measurements need.
    let burst_serve = |journal: Option<Arc<Mutex<JournalWriter>>>, cfg: ServeConfig| {
        let wall = Instant::now();
        let mut handle = match journal {
            Some(journal) => JobServer::start_journaled(cfg, journal),
            None => JobServer::start(cfg),
        };
        for spec in &specs {
            handle.submit(spec.clone());
        }
        let report = handle.finish();
        assert_eq!(report.outcomes.len(), sizes.jobs);
        wall.elapsed().as_secs_f64()
    };
    let journal_dir = std::env::temp_dir().join(format!("marsit-bench-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("create journal scratch dir");
    let journal_path = journal_dir.join("service.journal");
    let mut plain_walls = Vec::new();
    let mut journaled_walls = Vec::new();
    let overhead_reps = if sizes.mode == "full" { 5 } else { 3 };
    for _ in 0..overhead_reps {
        plain_walls.push(burst_serve(None, ServeConfig::new(sizes.shards)));
        let writer = JournalWriter::create(&journal_path).expect("create journal");
        journaled_walls.push(burst_serve(
            Some(Arc::new(Mutex::new(writer))),
            ServeConfig::new(sizes.shards),
        ));
    }
    let median_wall = |walls: &mut Vec<f64>| {
        walls.sort_by(f64::total_cmp);
        walls[walls.len() / 2]
    };
    let plain_wall_s = median_wall(&mut plain_walls);
    let journaled_wall_s = median_wall(&mut journaled_walls);
    let journal_overhead = journaled_wall_s / plain_wall_s.max(1e-9);
    let journal_bytes_full = std::fs::metadata(&journal_path)
        .expect("stat journal")
        .len();
    println!(
        "recovery: journal overhead {journal_overhead:.3}x at the default serving config \
         ({journaled_wall_s:.3}s journaled vs {plain_wall_s:.3}s plain, {journal_bytes_full} bytes)"
    );
    let overhead_cap = if sizes.mode == "full" { 1.25 } else { 3.0 };
    assert!(
        journal_overhead <= overhead_cap,
        "journal overhead {journal_overhead:.3}x exceeds the {overhead_cap}x budget"
    );

    // A snapshot-every-tick journal for the crash-replay measurements:
    // maximum snapshot density so a tear anywhere lands between snapshots.
    let rich_path = journal_dir.join("service-rich.journal");
    let writer = JournalWriter::create(&rich_path).expect("create rich journal");
    let mut rich_cfg = ServeConfig::new(sizes.shards);
    rich_cfg.tick_rounds = 2;
    rich_cfg.snapshot_every_ticks = 1;
    burst_serve(Some(Arc::new(Mutex::new(writer))), rich_cfg);
    let journal_path = rich_path;

    // Tear the journal at ~60% of its bytes — a mid-storm kill — and
    // replay the valid prefix.
    let bytes = std::fs::read(&journal_path).expect("read journal");
    let cut = bytes.len() * 6 / 10;
    let replay_wall = Instant::now();
    let replay = replay_bytes(&bytes[..cut]);
    let replay_s = replay_wall.elapsed().as_secs_f64();
    let replay_records = replay.records.len();
    let replay_records_per_sec = replay_records as f64 / replay_s.max(1e-9);
    let plan = plan_from_replay(&replay);
    println!(
        "recovery: torn at byte {cut}/{}: {replay_records} records replayed in {:.2}ms \
         ({replay_records_per_sec:.0} records/s) -> {} completed, {} resumable, {} fresh",
        bytes.len(),
        replay_s * 1e3,
        plan.completed.len(),
        plan.resumes.len(),
        plan.fresh.len(),
    );
    assert!(
        !plan.resumes.is_empty(),
        "a 60% tear of a snapshot-every-tick journal must leave resumable jobs"
    );

    // Time-to-first-resumed-round: parse the snapshot, rebuild trainer
    // state, and step one round — the latency floor of crash recovery.
    let resume = &plan.resumes[0];
    let resume_wall = Instant::now();
    let tel = Telemetry::recording();
    tel.restore_seq_floor(resume.tel_seq);
    let train_cfg = resume.spec.to_train_config(tel);
    let snapshot = TrainSnapshot::from_json(&resume.snapshot_json).expect("journaled snapshot");
    let mut state = TrainerState::restore(&train_cfg, &snapshot);
    state.step();
    let first_round_ms = resume_wall.elapsed().as_secs_f64() * 1e3;
    println!(
        "recovery: time to first resumed round {first_round_ms:.2}ms (job {})",
        resume.spec.name
    );

    // Finish the recovery end-to-end and re-verify every byte.
    std::fs::write(&journal_path, &bytes[..cut]).expect("truncate journal");
    let torn = replay_bytes(&std::fs::read(&journal_path).expect("reread journal"));
    let writer = JournalWriter::resume(&journal_path, &torn).expect("resume journal");
    let mut cfg = ServeConfig::new(sizes.shards);
    cfg.tick_rounds = 2;
    cfg.snapshot_every_ticks = 1;
    let mut handle = JobServer::start_journaled(cfg, Arc::new(Mutex::new(writer)));
    let resumed_jobs = plan.resumes.len();
    for resume in plan.resumes {
        handle.submit_resume(resume);
    }
    for spec in plan.fresh {
        handle.submit(spec);
    }
    let recovered = handle.finish();
    let mut recovered_violations = 0usize;
    for outcome in &plan.completed {
        if let Err(e) = verify_recovered(outcome) {
            recovered_violations += 1;
            eprintln!("RECOVERY BIT-EXACTNESS VIOLATION: {e}");
        }
    }
    for outcome in &recovered.outcomes {
        if let Err(e) = verify_outcome(outcome) {
            recovered_violations += 1;
            eprintln!("RECOVERY BIT-EXACTNESS VIOLATION: {e}");
        }
    }
    assert_eq!(
        plan.completed.len() + recovered.outcomes.len(),
        sizes.jobs,
        "every job must be accounted for across the simulated crash"
    );
    assert_eq!(
        recovered_violations, 0,
        "crash recovery perturbed {recovered_violations} job(s); refusing to write {out_path}"
    );
    println!(
        "recovery: {}/{} jobs byte-identical after the torn-journal restart",
        sizes.jobs, sizes.jobs
    );
    std::fs::remove_dir_all(&journal_dir).ok();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let git_stamp = git_describe();
    if git_stamp.ends_with("-dirty") {
        eprintln!("=================================================================");
        eprintln!("WARNING: bench_service is running in a DIRTY tree ({git_stamp}).");
        eprintln!("Do NOT commit numbers measured from uncommitted code.");
        eprintln!("=================================================================");
    }
    let json = format!(
        r#"{{
  "bench": "service",
  "mode": "{mode}",
  "config": {{
    "jobs": {jobs},
    "shards": {shards},
    "tick_rounds": {tick_rounds},
    "burst": {burst},
    "arrival_seed": {arrival_seed},
    "arrival_mean_ms": {arrival_mean_ms:.1},
    "rounds_per_job": {rounds},
    "migration_seed": {migration_seed},
    "migration_per_mille": {migration_per_mille}
  }},
  "throughput": {{
    "wall_s": {wall_s:.4},
    "jobs_per_sec": {jobs_per_sec:.2},
    "peak_in_flight": {peak},
    "sustained_in_flight": {sustained}
  }},
  "latency": {{
    "rounds_measured": {rounds_measured},
    "round_p50_ns": {p50},
    "round_p95_ns": {p95},
    "round_p99_ns": {p99}
  }},
  "migration": {{
    "count": {migrations},
    "snapshot_p50_ns": {snap_p50},
    "restore_p50_ns": {restore_p50},
    "snapshot_bytes_median": {snap_bytes_median}
  }},
  "pool": {{
    "hits": {pool_hits},
    "misses": {pool_misses},
    "returns": {pool_returns},
    "evictions": {pool_evictions},
    "hit_rate": {pool_hit_rate:.3}
  }},
  "exactness": {{
    "jobs_verified": {jobs},
    "violations": 0
  }},
  "recovery": {{
    "journal_overhead_ratio": {journal_overhead:.3},
    "journal_bytes": {journal_bytes_full},
    "replay_records": {replay_records},
    "replay_records_per_sec": {replay_records_per_sec:.0},
    "time_to_first_resumed_round_ms": {first_round_ms:.3},
    "resumed_jobs": {resumed_jobs},
    "recovered_violations": 0
  }},
  "meta": {{
    "host_cores": {cores},
    "git_describe": "{git_describe}"
  }}
}}
"#,
        mode = sizes.mode,
        jobs = sizes.jobs,
        shards = sizes.shards,
        tick_rounds = 2,
        burst = sizes.burst,
        arrival_seed = ARRIVAL_SEED,
        arrival_mean_ms = sizes.arrival_mean_ms,
        rounds = sizes.rounds,
        migration_seed = MIGRATION_SEED,
        migration_per_mille = MIGRATION_PER_MILLE,
        peak = report.peak_in_flight,
        sustained = report.sustained_in_flight,
        rounds_measured = lat.len(),
        snap_p50 = median(&snap_ns),
        restore_p50 = median(&restore_ns),
        snap_bytes_median = median(&snap_bytes),
        pool_hits = pool.hits,
        pool_misses = pool.misses,
        pool_returns = pool.returns,
        pool_evictions = pool.evictions,
        pool_hit_rate = pool.hit_rate(),
        git_describe = git_stamp,
    );
    std::fs::write(out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
