//! **Chaos soak harness**: a seeded crash/rejoin/drop/straggler storm over a
//! long training run, hard-asserting the elastic-membership guarantees:
//!
//! - **liveness** — every scheduled round completes; no panic, no hang, even
//!   when the ring shrinks to two survivors;
//! - **consensus** — `check_consistency` keeps the MAR invariant asserted
//!   after every synchronization (all live replicas bitwise identical);
//! - **deterministic replay** — the same seeds reproduce the storm run
//!   word-for-word (`TrainReport` equality, fault stats included);
//! - **checkpoint elasticity** — interrupting the storm mid-flight,
//!   round-tripping a `marsit-checkpoint/1` snapshot through JSON, and
//!   resuming yields the byte-identical report;
//! - **convergence** — the chaos run still trains: its final loss is finite
//!   and the clean-vs-chaos loss gap is recorded (and sanity-bounded).
//!
//! A second storm runs on the **multi-process transport backend**: one OS
//! process per rank (this binary re-execs itself as the worker), `SIGKILL`
//! for one of them mid-session, and the assertions that the survivors
//! degrade to a typed failure — never a hang — and that a fresh process
//! rejoining under the same rank restores bit-exact consensus.
//!
//! Emits `BENCH_chaos.json` (override with `--out <path>`). `--fast`
//! shrinks the storm for CI smoke runs; the JSON schema is identical in
//! both modes (`"mode"` records which ran).
//!
//! ```text
//! cargo run --release -p marsit-bench --bin chaos_soak [-- --fast] [-- --out PATH]
//! ```

use std::time::Instant;

use marsit_collectives::SyncError;
use marsit_core::transport::{drive_round, Scenario, TopoKind};
use marsit_core::CombineKind;
use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::{
    FaultPlan, Frame, FrameKind, MembershipEvent, MembershipSchedule, Topology, WireHub, DRIVER,
};
use marsit_trainsim::{train, StrategyKind, TrainConfig, TrainSnapshot, TrainerState};

struct Storm {
    mode: &'static str,
    workers: usize,
    rounds: usize,
    crashes: usize,
    rejoins: usize,
    storm_seed: u64,
    train_examples: usize,
    test_examples: usize,
}

/// The committed trajectory point: ≥200 rounds, ≥2 crashes, ≥1 rejoin.
const FULL: Storm = Storm {
    mode: "full",
    workers: 8,
    rounds: 240,
    crashes: 3,
    rejoins: 2,
    storm_seed: 104_729,
    train_examples: 4096,
    test_examples: 512,
};

/// CI smoke: same schema, same assertions, a fraction of the wall clock.
const FAST: Storm = Storm {
    mode: "fast",
    workers: 6,
    rounds: 48,
    crashes: 2,
    rejoins: 1,
    storm_seed: 104_729,
    train_examples: 512,
    test_examples: 128,
};

fn soak_cfg(storm: &Storm) -> TrainConfig {
    let mut cfg = TrainConfig::new(
        Workload::AlexNetMnist,
        Topology::ring(storm.workers),
        StrategyKind::Marsit { k: Some(10) },
    );
    cfg.rounds = storm.rounds;
    cfg.train_examples = storm.train_examples;
    cfg.test_examples = storm.test_examples;
    cfg.eval_every = 0;
    cfg.batch_per_worker = 64;
    cfg.local_lr = 0.05;
    cfg.marsit_global_lr = 0.01;
    cfg.optimizer = OptimizerKind::Sgd;
    cfg.check_consistency = true;
    cfg
}

/// What the multi-process kill/rejoin storm observed.
struct ProcessSoak {
    workers: usize,
    killed_rank: usize,
    round_before_kill_ok: bool,
    kill_surfaced_as_disconnect: bool,
    round_after_rejoin_ok: bool,
}

/// The process-backend storm: ring(4) of real OS processes (re-execs of this
/// binary) behind a [`WireHub`]. One clean round, then `SIGKILL` a rank and
/// drive a round that must fail **typed** on every survivor, then spawn a
/// replacement under the same rank and drive a round that must again match
/// the simulator bit-for-bit.
fn process_soak(storm_seed: u64) -> ProcessSoak {
    let exe = std::env::current_exe().expect("current exe");
    let exe = exe.to_str().expect("utf-8 exe path");
    let sc = Scenario {
        topo: TopoKind::Ring,
        world: 4,
        d: 1024,
        seed: storm_seed,
        round: 0,
        drop_p: None,
        combine: CombineKind::Weighted,
    };
    let reference = sc.run_simulator().expect("simulator reference");
    let matches_reference = |words: &[u64], combines: u64, draws: u64| {
        words == reference.consensus_words()
            && combines == reference.combines
            && draws == reference.rng_draws
    };

    let hub = WireHub::bind(sc.world).expect("bind chaos hub");
    let addr = hub.addr().expect("hub addr").to_string();
    let mut children: Vec<std::process::Child> = (0..sc.world)
        .map(|rank| sc.spawn_worker(exe, &addr, rank))
        .collect();
    for _ in 0..sc.world {
        hub.accept_worker().expect("worker hello");
    }

    // Clean round: four processes agree with the simulator word-for-word.
    let (words, combines, draws) = drive_round(&hub, &sc).expect("clean process round");
    let round_before_kill_ok = matches_reference(&words, combines, draws);
    assert!(round_before_kill_ok, "process consensus diverged pre-kill");

    // SIGKILL one rank; the next round must degrade to a typed failure on
    // the driver (survivors report `failed`, nobody hangs).
    let killed_rank = 1;
    children[killed_rank].kill().expect("kill worker");
    let _ = children[killed_rank].wait();
    let kill_surfaced_as_disconnect = matches!(
        drive_round(&hub, &sc),
        Err(SyncError::PeerDisconnected { .. })
    );
    assert!(
        kill_surfaced_as_disconnect,
        "killed worker did not surface as a typed disconnect"
    );

    // A fresh process rejoins under the same rank; consensus is restored.
    children[killed_rank] = sc.spawn_worker(exe, &addr, killed_rank);
    assert_eq!(
        hub.accept_worker().expect("rejoin hello"),
        killed_rank,
        "replacement connected under the wrong rank"
    );
    let (words, combines, draws) = drive_round(&hub, &sc).expect("post-rejoin round");
    let round_after_rejoin_ok = matches_reference(&words, combines, draws);
    assert!(round_after_rejoin_ok, "post-rejoin consensus diverged");

    hub.broadcast(&Frame::control(FrameKind::Stop, DRIVER, DRIVER));
    for child in &mut children {
        let _ = child.wait();
    }
    ProcessSoak {
        workers: sc.world,
        killed_rank,
        round_before_kill_ok,
        kill_surfaced_as_disconnect,
        round_after_rejoin_ok,
    }
}

fn main() {
    // A copy of this binary doubles as one rank of the process-backend storm
    // (see `process_soak`); the worker environment routes it there.
    if marsit_core::transport::maybe_run_worker_from_env() {
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let storm = if args.iter().any(|a| a == "--fast") {
        FAST
    } else {
        FULL
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_chaos.json", String::as_str);

    // --- The storm schedule: seeded, causal, never below two survivors. ---
    let schedule = MembershipSchedule::storm(
        storm.storm_seed,
        storm.workers,
        storm.rounds as u64,
        storm.crashes,
        storm.rejoins,
    );
    let crash_events = schedule
        .events
        .iter()
        .filter(|e| matches!(e, MembershipEvent::Crash { .. }))
        .count();
    let rejoin_events = schedule.events.len() - crash_events;
    assert!(
        crash_events >= 2 && rejoin_events >= 1,
        "storm under-generated: {:?}",
        schedule.events
    );
    println!(
        "storm seed={} over {} rounds on ring({}): {crash_events} crashes, {rejoin_events} rejoins",
        storm.storm_seed, storm.rounds, storm.workers
    );

    // --- Clean baseline: same run, no faults. ---
    let clean_cfg = soak_cfg(&storm);
    let t = Instant::now();
    let clean = train(&clean_cfg);
    let clean_s = t.elapsed().as_secs_f64();
    assert!(!clean.diverged, "clean baseline diverged");

    // --- The chaos run: storm + lossy links + a straggler. ---
    let mut chaos_cfg = soak_cfg(&storm);
    chaos_cfg.fault_plan = FaultPlan::seeded(storm.storm_seed)
        .with_link_drop(0.02)
        .with_link_corruption(0.01)
        .with_straggler(storm.workers - 1, 2.5)
        .with_membership(schedule.clone());
    let t = Instant::now();
    let chaos = train(&chaos_cfg);
    let chaos_s = t.elapsed().as_secs_f64();

    // Liveness: every round produced a record; nothing panicked above.
    assert_eq!(
        chaos.records.len(),
        storm.rounds,
        "storm run lost rounds (liveness violated)"
    );
    assert_eq!(chaos.faults.rejoins as usize, rejoin_events);
    assert!(
        chaos.faults.repairs as usize >= schedule.events.len(),
        "every membership change must re-form the topology: {:?}",
        chaos.faults
    );
    assert!(
        chaos.faults.catchup_extra_s > 0.0,
        "rejoins must pay catch-up transfers on the simulated clock"
    );

    // Convergence through chaos: finite loss, bounded gap to clean.
    let loss_gap = chaos.final_eval.loss - clean.final_eval.loss;
    let accuracy_gap = clean.final_eval.accuracy - chaos.final_eval.accuracy;
    assert!(!chaos.diverged, "chaos run diverged");
    assert!(chaos.final_eval.loss.is_finite());
    assert!(
        chaos.final_eval.loss < clean.final_eval.loss.mul_add(3.0, 1.0),
        "chaos loss {} is not in the same regime as clean loss {}",
        chaos.final_eval.loss,
        clean.final_eval.loss
    );
    println!(
        "clean loss {:.4} ({clean_s:.2}s) vs chaos loss {:.4} ({chaos_s:.2}s): gap {loss_gap:+.4}",
        clean.final_eval.loss, chaos.final_eval.loss
    );

    // Deterministic replay: the same plan reproduces the storm word-for-word.
    let replay = train(&chaos_cfg);
    let replay_deterministic = replay == chaos;
    assert!(replay_deterministic, "storm replay diverged");

    // Checkpoint elasticity: interrupt mid-storm, serialize, restore, finish.
    let split = storm.rounds / 2;
    let mut state = TrainerState::new(&chaos_cfg);
    for _ in 0..split {
        state.step();
    }
    let snapshot_json = state.snapshot().to_json();
    drop(state);
    let parsed = TrainSnapshot::from_json(&snapshot_json).expect("snapshot round-trips");
    let mut resumed = TrainerState::restore(&chaos_cfg, &parsed);
    while !resumed.is_done() {
        resumed.step();
    }
    let resume_bit_identical = resumed.finish() == chaos;
    assert!(
        resume_bit_identical,
        "resume from the round-{split} checkpoint diverged from the storm run"
    );
    println!(
        "replay deterministic: {replay_deterministic}; \
         resume from round {split} bit-identical: {resume_bit_identical} \
         (snapshot {:.1} MiB)",
        snapshot_json.len() as f64 / (1024.0 * 1024.0),
    );

    // --- The process-backend storm: real processes, a real SIGKILL. ---
    let proc_soak = process_soak(storm.storm_seed);
    println!(
        "process storm on ring({}): kill rank {} -> typed disconnect: {}; rejoin -> consensus: {}",
        proc_soak.workers,
        proc_soak.killed_rank,
        proc_soak.kill_surfaced_as_disconnect,
        proc_soak.round_after_rejoin_ok,
    );

    let f = chaos.faults;
    let json = format!(
        r#"{{
  "bench": "chaos",
  "mode": "{mode}",
  "config": {{
    "workers": {workers},
    "topology": "ring",
    "rounds": {rounds},
    "storm_seed": {seed},
    "crash_events": {crash_events},
    "rejoin_events": {rejoin_events},
    "link_drop": 0.02,
    "link_corruption": 0.01,
    "straggler_multiplier": 2.5
  }},
  "liveness": {{
    "rounds_completed": {rounds_completed},
    "completed": true
  }},
  "consensus": {{
    "checked_every_round": true,
    "violations": 0
  }},
  "determinism": {{
    "replay_deterministic": {replay_deterministic},
    "resume_split_round": {split},
    "resume_bit_identical": {resume_bit_identical},
    "snapshot_bytes": {snapshot_bytes}
  }},
  "convergence": {{
    "clean_loss": {clean_loss:.6},
    "chaos_loss": {chaos_loss:.6},
    "loss_gap": {loss_gap:.6},
    "clean_accuracy": {clean_acc:.4},
    "chaos_accuracy": {chaos_acc:.4},
    "accuracy_gap": {accuracy_gap:.4}
  }},
  "faults": {{
    "retransmits": {retransmits},
    "dropped_transfers": {dropped},
    "corrupted_transfers": {corrupted},
    "repairs": {repairs},
    "crashed_workers_peak": {crashed},
    "forced_deliveries": {forced},
    "rejoins": {rejoins},
    "retry_extra_s": {retry_s:.6},
    "catchup_extra_s": {catchup_s:.6}
  }},
  "process": {{
    "workers": {proc_workers},
    "topology": "ring",
    "killed_rank": {proc_killed_rank},
    "round_before_kill_ok": {proc_before_ok},
    "kill_surfaced_as_disconnect": {proc_disconnect},
    "round_after_rejoin_ok": {proc_rejoin_ok}
  }},
  "meta": {{
    "clean_wall_s": {clean_s:.3},
    "chaos_wall_s": {chaos_s:.3},
    "git_describe": "{git_describe}"
  }}
}}
"#,
        mode = storm.mode,
        workers = storm.workers,
        rounds = storm.rounds,
        seed = storm.storm_seed,
        rounds_completed = chaos.records.len(),
        snapshot_bytes = snapshot_json.len(),
        clean_loss = clean.final_eval.loss,
        chaos_loss = chaos.final_eval.loss,
        clean_acc = clean.final_eval.accuracy,
        chaos_acc = chaos.final_eval.accuracy,
        retransmits = f.retransmits,
        dropped = f.dropped_transfers,
        corrupted = f.corrupted_transfers,
        repairs = f.repairs,
        crashed = f.crashed_workers,
        forced = f.forced_deliveries,
        rejoins = f.rejoins,
        retry_s = f.retry_extra_s,
        catchup_s = f.catchup_extra_s,
        proc_workers = proc_soak.workers,
        proc_killed_rank = proc_soak.killed_rank,
        proc_before_ok = proc_soak.round_before_kill_ok,
        proc_disconnect = proc_soak.kill_surfaced_as_disconnect,
        proc_rejoin_ok = proc_soak.round_after_rejoin_ok,
        git_describe = env!("MARSIT_GIT_DESCRIBE"),
    );
    std::fs::write(out_path, json).expect("write chaos soak JSON");
    println!("wrote {out_path}");
}
