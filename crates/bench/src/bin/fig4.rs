//! **Figure 4**: training ResNet-50 on ImageNet.
//!
//! (a) Test accuracy versus simulated wall-clock time — the paper reports
//!     Marsit reaching similar accuracy ~1.5× faster than PSGD.
//! (b) Test accuracy versus per-worker communication budget — Marsit needs
//!     ~90% less than PSGD and ~70% less than the signSGD family.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin fig4
//! ```

use marsit_bench::hr;
use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::Topology;
use marsit_trainsim::{train, StrategyKind, TrainConfig, TrainReport};

const ROUNDS: usize = 800;
const M: usize = 16;

fn run(strategy: StrategyKind) -> TrainReport {
    let mut cfg = TrainConfig::new(Workload::ResNet50ImageNet, Topology::ring(M), strategy);
    cfg.rounds = ROUNDS;
    cfg.train_examples = 16_384;
    cfg.test_examples = 2048;
    cfg.batch_per_worker = 384 / M; // paper's 6144 global batch, scaled
    cfg.local_lr = match strategy {
        StrategyKind::Psgd => 0.1,
        StrategyKind::SignMajority => 0.005,
        StrategyKind::Cascading => 0.005,
        StrategyKind::Ssdm => 0.001,
        StrategyKind::Marsit { .. } => 0.03,
        _ => 0.01,
    };
    cfg.marsit_global_lr = 0.008;
    cfg.optimizer = OptimizerKind::Momentum(0.9);
    cfg.eval_every = 40;
    train(&cfg)
}

fn main() {
    println!("== Fig 4: ResNet-50-proxy / ImageNet-proxy, ring({M}), T = {ROUNDS} ==\n");
    let strategies = StrategyKind::TABLE2;
    let reports: Vec<TrainReport> = strategies.iter().map(|&s| run(s)).collect();

    // (a) accuracy vs simulated time.
    println!("-- Fig 4a: accuracy (%) vs simulated wall-clock (s) --\n");
    print!("{:<10}", "");
    for r in &reports {
        print!("{:>21}", r.strategy_label);
    }
    println!();
    print!("{:<10}", "eval pt");
    for _ in &reports {
        print!("{:>12} {:>8}", "time(s)", "acc");
    }
    println!();
    hr(10 + 21 * reports.len());
    let eval_rounds: Vec<usize> = reports[0]
        .records
        .iter()
        .filter(|r| r.eval.is_some())
        .map(|r| r.round)
        .collect();
    for (i, &round) in eval_rounds.iter().enumerate() {
        print!("{:<10}", i + 1);
        for r in &reports {
            let elapsed: f64 = r
                .records
                .iter()
                .take_while(|x| x.round <= round)
                .map(|x| x.time.total())
                .sum();
            let acc = r
                .records
                .iter()
                .find(|x| x.round == round)
                .and_then(|x| x.eval)
                .map_or(f64::NAN, |e| e.accuracy * 100.0);
            print!("{elapsed:>12.1} {acc:>8.2}");
        }
        println!();
    }

    // Headline speedups at fixed accuracy targets.
    for target in [0.70f64, 0.75, reports[0].final_eval.accuracy * 0.95] {
        println!("\nTime to reach {:.2}%:", target * 100.0);
        for r in &reports {
            match r.time_to_accuracy(target) {
                Some(t) => println!("  {:<12} {:>10.1} s", r.strategy_label, t),
                None => println!("  {:<12} {:>12}", r.strategy_label, "not reached"),
            }
        }
    }

    // (b) accuracy vs communication budget.
    println!("\n-- Fig 4b: accuracy (%) vs per-worker traffic (megabits) --\n");
    for r in &reports {
        let series = r.accuracy_vs_megabits();
        let points: Vec<String> = series
            .iter()
            .map(|(mb, acc)| format!("({mb:.0} Mb, {:.1}%)", acc * 100.0))
            .collect();
        println!("{:<12} {}", r.strategy_label, points.join(" "));
    }
    println!("\nFinal per-worker traffic (megabits) and accuracy:");
    for r in &reports {
        let last = r.records.last().expect("non-empty run");
        println!(
            "  {:<12} {:>10.0} Mb  acc {:.2}%{}",
            r.strategy_label,
            last.cumulative_megabits_per_worker,
            r.final_eval.accuracy * 100.0,
            if r.diverged { "  (diverged)" } else { "" }
        );
    }
    println!(
        "\nExpected shape (paper Fig 4): Marsit and Marsit-100 reach PSGD-level\n\
         accuracy in less simulated time (≈1.5x) and at a fraction of the\n\
         communication budget (~10% of PSGD, ~30% of the signSGD baselines)."
    );
}
