//! Run-report CLI over a recorded telemetry event log.
//!
//! Ingests the JSONL event log written by a run with `MARSIT_TELEMETRY=path`
//! (plus the `<path>.summary.json` snapshot when present) and prints:
//!
//! - run metadata (strategy, topology, workers, seed, link parameters);
//! - wire totals and the critical-path schedule time rebuilt from per-hop
//!   events — bit-identical to the collective's own `Trace::time`;
//! - per-directed-link utilization, retransmit, and loss counts;
//! - the simulated phase breakdown (compute / compression / communication);
//! - fault-layer activity and retry time lost;
//! - histogram percentiles from the summary snapshot.
//!
//! ```text
//! telemetry_report <events.jsonl> [--summary PATH] [--json] [--validate]
//! telemetry_report merge <shard.jsonl>... [--out PATH]
//! ```
//!
//! `--validate` checks the log against the event schema and exits non-zero
//! on any violation (used by CI). `--json` prints the analysis as a single
//! machine-readable JSON object instead of tables.
//!
//! `merge` combines per-rank trace shards into the one causally-ordered
//! log (identical run_meta events deduplicated, hops ordered by absolute
//! expanded-step seq) regardless of the order the shards are listed in,
//! writing JSONL to stdout or `--out`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use marsit_telemetry::json::{self, Json};
use marsit_telemetry::report::{analyze, merge_logs, parse_jsonl, validate, RunAnalysis};

fn usage() -> ! {
    eprintln!("usage: telemetry_report <events.jsonl> [--summary PATH] [--json] [--validate]");
    eprintln!("       telemetry_report merge <shard.jsonl>... [--out PATH]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        return merge_main(&args[1..]);
    }
    let mut events_path: Option<PathBuf> = None;
    let mut summary_path: Option<PathBuf> = None;
    let mut as_json = false;
    let mut do_validate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--summary" => summary_path = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--json" => as_json = true,
            "--validate" => do_validate = true,
            "--help" | "-h" => usage(),
            _ if events_path.is_none() => events_path = Some(PathBuf::from(arg)),
            _ => usage(),
        }
    }
    let Some(events_path) = events_path else {
        usage()
    };

    let text = match std::fs::read_to_string(&events_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", events_path.display());
            return ExitCode::FAILURE;
        }
    };
    let events = match parse_jsonl(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("error: {}: {e}", events_path.display());
            return ExitCode::FAILURE;
        }
    };

    if do_validate {
        let problems = validate(&events);
        if problems.is_empty() {
            println!("OK: {} events, schema valid", events.len());
        } else {
            for p in &problems {
                eprintln!("invalid: {p}");
            }
            eprintln!(
                "{} schema violation(s) in {} events",
                problems.len(),
                events.len()
            );
            return ExitCode::FAILURE;
        }
    }

    let analysis = match analyze(&events) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The summary snapshot rides next to the event log unless pointed
    // elsewhere; it is optional in both cases.
    let summary_path = summary_path
        .unwrap_or_else(|| PathBuf::from(format!("{}.summary.json", events_path.display())));
    let summary = read_summary(&summary_path);

    if as_json {
        println!(
            "{}",
            analysis_json(&analysis, events.len(), summary.as_ref())
        );
    } else {
        print_report(&analysis, events.len(), summary.as_ref());
    }
    ExitCode::SUCCESS
}

/// `telemetry_report merge`: parse every shard, merge into one causally
/// ordered log, emit JSONL. File order is irrelevant by construction
/// ([`merge_logs`] sorts on content), so shell globs are safe inputs.
fn merge_main(args: &[String]) -> ExitCode {
    let mut shards: Vec<PathBuf> = Vec::new();
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            _ => shards.push(PathBuf::from(arg)),
        }
    }
    if shards.is_empty() {
        usage();
    }
    let mut logs: Vec<Vec<marsit_telemetry::Event>> = Vec::with_capacity(shards.len());
    for path in &shards {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match parse_jsonl(&text) {
            Ok(ev) => logs.push(ev),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let merged = merge_logs(&logs);
    let mut out = String::new();
    for ev in &merged {
        ev.write_jsonl(&mut out);
        out.push('\n');
    }
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &out) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "merged {} shard(s), {} events -> {}",
                shards.len(),
                merged.len(),
                path.display()
            );
        }
        None => print!("{out}"),
    }
    ExitCode::SUCCESS
}

/// Parse the summary snapshot if the file exists and is well-formed.
fn read_summary(path: &Path) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    match json::parse(text.trim()) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!(
                "warning: ignoring malformed summary {}: {e}",
                path.display()
            );
            None
        }
    }
}

fn print_report(a: &RunAnalysis, event_count: usize, summary: Option<&Json>) {
    println!("== run ==");
    if let Some(meta) = &a.meta {
        let s = |k: &str| meta.str_field(k).unwrap_or("?").to_string();
        let n = |k: &str| meta.u64_field(k).map_or("?".to_string(), |v| v.to_string());
        println!("  strategy   {}", s("strategy"));
        println!("  topology   {}", s("topology"));
        println!("  workers    {}", n("workers"));
        println!("  d          {}", n("d"));
        println!("  rounds     {}", n("rounds"));
        println!("  seed       {}", n("seed"));
        if let Some((alpha, beta)) = a.meta_alpha_beta() {
            println!("  link       alpha {alpha:.2e} s, beta {beta:.3e} B/s");
        }
        if let Some(git) = meta.str_field("git_describe") {
            println!("  build      {git}");
        }
    } else {
        println!("  (no run_meta event)");
    }
    println!("  events     {event_count}");

    println!("== wire ==");
    println!("  hop events        {}", a.hop_events);
    println!("  expanded steps    {}", a.steps.len());
    println!("  total bytes       {}", a.total_hop_bytes);
    println!("  retransmits       {}", a.retransmits);
    println!("  undelivered       {}", a.undelivered);
    if let Some((alpha, beta)) = a.meta_alpha_beta() {
        println!("  schedule time     {:.6e} s", a.schedule_time(alpha, beta));
    }

    if !a.links.is_empty() {
        println!("== links ==");
        println!("  send -> recv       bytes   share  attempts  retrans  lost");
        let total = a.total_hop_bytes.max(1);
        for l in &a.links {
            println!(
                "  {:>4} -> {:<4} {:>11}  {:>5.1}%  {:>8}  {:>7}  {:>4}",
                l.send,
                l.recv,
                l.bytes,
                l.bytes as f64 * 100.0 / total as f64,
                l.attempts,
                l.retransmits,
                l.undelivered
            );
        }
    }

    if a.phases.rounds > 0 {
        println!("== phases ({} rounds) ==", a.phases.rounds);
        let total = a.phases.total_s().max(f64::MIN_POSITIVE);
        for (name, v) in [
            ("compute", a.phases.compute_s),
            ("compression", a.phases.compression_s),
            ("communication", a.phases.communication_s),
        ] {
            println!("  {name:<14} {v:>12.6} s  {:>5.1}%", v * 100.0 / total);
        }
        println!("  {:<14} {:>12.6} s", "total", a.phases.total_s());
    }

    if a.sync_events > 0 {
        println!("== faults ({} sync events) ==", a.sync_events);
        println!("  retransmits    {}", a.faults.retransmits);
        println!("  dropped        {}", a.faults.dropped);
        println!("  corrupted      {}", a.faults.corrupted);
        println!("  repairs        {}", a.faults.repairs);
        println!("  crashed        {}", a.faults.crashed);
        println!("  retry time     {:.6e} s", a.retry_extra_s);
    }

    if let Some(hists) = summary
        .and_then(|s| s.get("histograms"))
        .and_then(Json::as_obj)
    {
        if !hists.is_empty() {
            println!("== histograms ==");
            println!(
                "  {:<24} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "name", "count", "mean", "p50", "p95", "p99", "max"
            );
            for (name, h) in hists {
                let f = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
                println!(
                    "  {:<24} {:>8} {:>12.5e} {:>12.5e} {:>12.5e} {:>12.5e} {:>12.5e}",
                    name,
                    h.get("count").and_then(Json::as_u64).unwrap_or(0),
                    f("mean"),
                    f("p50"),
                    f("p95"),
                    f("p99"),
                    f("max")
                );
            }
        }
    }
}

/// The analysis as one JSON object (`--json`). Hand-written like every other
/// JSON artifact in this workspace (the serde shim is a no-op).
fn analysis_json(a: &RunAnalysis, event_count: usize, summary: Option<&Json>) -> String {
    let mut out = String::from("{\"schema\":\"marsit-telemetry-report/1\"");
    out.push_str(&format!(",\"events\":{event_count}"));
    if let Some(meta) = &a.meta {
        out.push_str(",\"meta\":");
        meta.write_jsonl(&mut out);
    }
    out.push_str(&format!(
        ",\"wire\":{{\"hop_events\":{},\"steps\":{},\"total_bytes\":{},\
         \"retransmits\":{},\"undelivered\":{}",
        a.hop_events,
        a.steps.len(),
        a.total_hop_bytes,
        a.retransmits,
        a.undelivered
    ));
    if let Some((alpha, beta)) = a.meta_alpha_beta() {
        out.push_str(",\"schedule_time_s\":");
        json::write_f64(&mut out, a.schedule_time(alpha, beta));
    }
    out.push('}');
    out.push_str(",\"links\":[");
    for (i, l) in a.links.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"send\":{},\"recv\":{},\"bytes\":{},\"attempts\":{},\
             \"retransmits\":{},\"undelivered\":{}}}",
            l.send, l.recv, l.bytes, l.attempts, l.retransmits, l.undelivered
        ));
    }
    out.push(']');
    out.push_str(&format!(",\"phases\":{{\"rounds\":{}", a.phases.rounds));
    for (k, v) in [
        ("compute_s", a.phases.compute_s),
        ("compression_s", a.phases.compression_s),
        ("communication_s", a.phases.communication_s),
        ("total_s", a.phases.total_s()),
    ] {
        out.push_str(&format!(",\"{k}\":"));
        json::write_f64(&mut out, v);
    }
    out.push('}');
    out.push_str(&format!(
        ",\"faults\":{{\"sync_events\":{},\"retransmits\":{},\"dropped\":{},\
         \"corrupted\":{},\"repairs\":{},\"crashed\":{},\"retry_extra_s\":",
        a.sync_events,
        a.faults.retransmits,
        a.faults.dropped,
        a.faults.corrupted,
        a.faults.repairs,
        a.faults.crashed
    ));
    json::write_f64(&mut out, a.retry_extra_s);
    out.push('}');
    if let Some(hists) = summary.and_then(|s| s.get("histograms")) {
        out.push_str(",\"histograms\":");
        write_json_value(&mut out, hists);
    }
    out.push('}');
    out
}

/// Re-serialize a parsed [`Json`] value (used to pass the summary's
/// histogram section through to `--json` output).
fn write_json_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => {
            if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                out.push_str(&format!("{}", *x as i64));
            } else {
                json::write_f64(out, *x);
            }
        }
        Json::Str(s) => json::write_str(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(out, k);
                out.push(':');
                write_json_value(out, val);
            }
            out.push('}');
        }
    }
}
