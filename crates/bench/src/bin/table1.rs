//! **Table 1**: training MNIST over AlexNet — cascading compression vs no
//! compression at M ∈ {3, 8}, best result over the stepsize grid
//! {0.03, 0.01, 0.005}.
//!
//! Paper's numbers: cascading M=3 → 187 rounds, 87.2% ± 2.31, 11.2 min;
//! cascading M=8 → divergence; no compression M=3 → 129 rounds, 99.1%,
//! 20.7 min; M=8 → 76 rounds, 99.2%, 10.6 min.
//!
//! ```text
//! cargo run --release -p marsit-bench --bin table1
//! ```

use marsit_bench::{hr, minutes, pct};
use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::Topology;
use marsit_tensor::stats::Accumulator;
use marsit_trainsim::{train, StrategyKind, TrainConfig, TrainReport};

const STEPSIZES: [f32; 3] = [0.03, 0.01, 0.005];
const ROUNDS: usize = 400;
const SEEDS: [u64; 3] = [42, 43, 44];

fn run(strategy: StrategyKind, m: usize, lr: f32, seed: u64) -> TrainReport {
    let mut cfg = TrainConfig::new(Workload::AlexNetMnist, Topology::ring(m), strategy);
    cfg.rounds = ROUNDS;
    cfg.train_examples = 8192;
    cfg.test_examples = 2048;
    cfg.batch_per_worker = 64; // fixed per-worker batch: global batch grows with M
    cfg.local_lr = lr;
    cfg.optimizer = OptimizerKind::Sgd;
    cfg.eval_every = 10;
    cfg.seed = seed;
    train(&cfg)
}

/// Rounds to reach within 1 pp of the run's own best accuracy ("rounds to
/// converge"), or `None` if it never stabilizes above chance.
fn rounds_to_converge(report: &TrainReport) -> Option<usize> {
    let best = report.best_accuracy();
    if best < 0.2 {
        return None;
    }
    report.rounds_to_accuracy(best - 0.01)
}

fn main() {
    println!("== Table 1: MNIST-proxy over AlexNet-proxy, best over stepsizes {STEPSIZES:?} ==\n");
    println!(
        "{:<26} {:>7} {:>16} {:>12}",
        "", "Rounds", "Accuracy (%)", "Time (min)"
    );
    hr(64);
    for (label, strategy) in [
        ("cascading compression", StrategyKind::Cascading),
        ("no compression", StrategyKind::Psgd),
    ] {
        println!("{label}");
        for m in [3usize, 8] {
            // Best stepsize by mean accuracy across seeds; std across seeds.
            let mut best: Option<(f32, Accumulator, Vec<TrainReport>)> = None;
            for lr in STEPSIZES {
                let mut acc = Accumulator::new();
                let mut reports = Vec::new();
                for seed in SEEDS {
                    let r = run(strategy, m, lr, seed);
                    acc.push(r.best_accuracy() * 100.0);
                    reports.push(r);
                }
                if best.as_ref().is_none_or(|(_, b, _)| acc.mean() > b.mean()) {
                    best = Some((lr, acc, reports));
                }
            }
            let (lr, acc, reports) = best.expect("at least one stepsize");
            let diverged = reports.iter().any(|r| r.diverged)
                || acc.mean() < 20.0
                || reports.iter().all(|r| rounds_to_converge(r).is_none());
            let rounds: Vec<usize> = reports.iter().filter_map(rounds_to_converge).collect();
            let mean_rounds = if rounds.is_empty() {
                ROUNDS
            } else {
                rounds.iter().sum::<usize>() / rounds.len()
            };
            // Simulated seconds until convergence: total run time scaled by
            // the fraction of rounds actually needed.
            let time_s: f64 = reports.iter().map(|r| r.total_time.total()).sum::<f64>()
                / reports.len() as f64
                * mean_rounds as f64
                / ROUNDS as f64;
            if diverged {
                println!(
                    "  M = {m:<2} (lr {lr})        {:>7} {:>16} {:>12}",
                    format!("{ROUNDS}+"),
                    "divergence",
                    "NA"
                );
            } else {
                println!(
                    "  M = {m:<2} (lr {lr})        {:>7} {:>13} ±{:>4.2} {:>9}",
                    mean_rounds,
                    pct(acc.mean() / 100.0),
                    acc.sample_std(),
                    minutes(time_s)
                );
            }
        }
    }
    hr(64);
    println!(
        "\nExpected shape (paper Table 1): cascading converges slowly and far\n\
         below PSGD at M=3 and falls apart at M=8, while PSGD improves with M."
    );
}
