//! Short fault-injected Marsit training run with the telemetry sink on:
//! writes the JSONL event log plus its `<path>.summary.json` snapshot — the
//! input `telemetry_report` consumes in CI and in the README transcript.
//!
//! ```text
//! telemetry_demo [--out PATH] [--rounds N]
//! ```
//!
//! The sink path defaults to `$MARSIT_TELEMETRY`, then `telemetry_demo.jsonl`.
//! Fully deterministic: same arguments, byte-identical log.

use marsit_models::{OptimizerKind, Workload};
use marsit_simnet::{FaultPlan, Topology};
use marsit_telemetry::Telemetry;
use marsit_trainsim::{train, StrategyKind, TrainConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out")
        .or_else(|| std::env::var(marsit_telemetry::ENV_VAR).ok())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "telemetry_demo.jsonl".to_string());
    let rounds: usize = flag("--rounds").map_or(12, |s| s.parse().expect("--rounds N"));

    let tel = Telemetry::recording_to(&out);
    let mut cfg = TrainConfig::new(
        Workload::AlexNetMnist,
        Topology::ring(4),
        StrategyKind::Marsit { k: Some(10) },
    );
    cfg.rounds = rounds;
    cfg.train_examples = 2048;
    cfg.test_examples = 256;
    cfg.eval_every = 0;
    cfg.local_lr = 0.1;
    cfg.marsit_global_lr = 0.01;
    cfg.optimizer = OptimizerKind::Sgd;
    cfg.fault_plan = FaultPlan::seeded(7)
        .with_link_drop(0.05)
        .with_straggler(1, 3.0)
        .with_crash(3, rounds.saturating_sub(4) as u64);
    cfg.telemetry = tel.clone();

    let report = train(&cfg);
    let path = tel
        .flush_env()
        .expect("write telemetry log")
        .expect("recording_to always has a sink path");
    println!(
        "trained {} rounds (final accuracy {:.3}), faults: {} retransmits, {} crashed",
        rounds,
        report.final_eval.accuracy,
        report.faults.retransmits,
        report.faults.crashed_workers
    );
    println!(
        "wrote {} events to {} (+ {}.summary.json)",
        tel.event_count(),
        path.display(),
        path.display()
    );
}
