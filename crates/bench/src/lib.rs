//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary under `src/bin/` reproduces one table or figure:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — cascading vs no compression on MNIST/AlexNet |
//! | `fig1` | Fig 1a (iteration time breakdown) and Fig 1b (matching rate) |
//! | `fig3` | Fig 3 — the `K` sweep on CIFAR-10/AlexNet |
//! | `table2` | Table 2 — top-1 accuracy, 5 workloads × 6 strategies |
//! | `fig4` | Fig 4a (time-to-accuracy) and Fig 4b (accuracy vs budget) |
//! | `fig5` | Fig 5 — per-round phase breakdown under RAR and TAR |
//! | `theory` | Theorems 1–3 — deviations, linear speedup, `⊙` ablation |
//! | `bench_round` | Perf trajectory — hot-path timings → `BENCH_round.json` |
//!
//! Run with `cargo run --release -p marsit-bench --bin <name>`. Results are
//! recorded against the paper's numbers in `EXPERIMENTS.md`.

use std::io::Write;
use std::path::Path;

use marsit_trainsim::TrainReport;

/// Prints a horizontal rule sized to `width`.
pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats an accuracy as `xx.xx` percent.
#[must_use]
pub fn pct(accuracy: f64) -> String {
    format!("{:.2}", accuracy * 100.0)
}

/// Formats simulated seconds as minutes with two decimals (the paper's
/// tables report minutes).
#[must_use]
pub fn minutes(seconds: f64) -> String {
    format!("{:.2}", seconds / 60.0)
}

/// Mean matching rate over a run (Fig 1b's metric).
#[must_use]
pub fn mean_matching_rate(report: &TrainReport) -> f64 {
    if report.records.is_empty() {
        return 0.0;
    }
    report.records.iter().map(|r| r.matching_rate).sum::<f64>() / report.records.len() as f64
}

/// Renders a simple ASCII stacked bar for a phase breakdown, scaled so that
/// `max_total` fills `width` characters. Compute `#`, codec `%`, comm `=`.
#[must_use]
pub fn phase_bar(breakdown: marsit_simnet::PhaseBreakdown, max_total: f64, width: usize) -> String {
    let scale = if max_total > 0.0 {
        width as f64 / max_total
    } else {
        0.0
    };
    let n = |x: f64| (x * scale).round() as usize;
    format!(
        "{}{}{}",
        "#".repeat(n(breakdown.compute_s)),
        "%".repeat(n(breakdown.compression_s)),
        "=".repeat(n(breakdown.communication_s))
    )
}

/// Writes a run's per-round records as CSV (one row per round) for external
/// plotting. Columns: round, train_loss, grad_norm_sq, matching_rate,
/// full_precision, compute_s, compression_s, communication_s,
/// wire_bits_per_element, cumulative_megabits_per_worker, accuracy (empty
/// when the round was not evaluated).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_round_csv(path: &Path, report: &TrainReport) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    let header = concat!(
        "round,train_loss,grad_norm_sq,matching_rate,full_precision,",
        "compute_s,compression_s,communication_s,wire_bits_per_element,",
        "cumulative_megabits_per_worker,accuracy"
    );
    writeln!(f, "{header}")?;
    for r in &report.records {
        let acc = r
            .eval
            .map_or(String::new(), |e| format!("{:.6}", e.accuracy));
        writeln!(
            f,
            "{},{:.6},{:.6e},{:.4},{},{:.6e},{:.6e},{:.6e},{:.4},{:.3},{}",
            r.round,
            r.train_loss,
            r.mean_grad_norm_sq,
            r.matching_rate,
            r.full_precision,
            r.time.compute_s,
            r.time.compression_s,
            r.time.communication_s,
            r.wire_bits_per_element,
            r.cumulative_megabits_per_worker,
            acc
        )?;
    }
    Ok(())
}

/// If the `MARSIT_CSV_DIR` environment variable is set, writes the report's
/// round records to `<dir>/<name>.csv` and returns the path. Experiment
/// binaries call this so plots can be regenerated outside Rust.
pub fn maybe_dump_csv(name: &str, report: &TrainReport) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("MARSIT_CSV_DIR")?;
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.csv"));
    write_round_csv(&path, report).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_simnet::PhaseBreakdown;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.923_41), "92.34");
    }

    #[test]
    fn minutes_formats() {
        assert_eq!(minutes(90.0), "1.50");
    }

    #[test]
    fn csv_round_trips_header_and_rows() {
        use marsit_models::Workload;
        use marsit_simnet::Topology;
        use marsit_trainsim::{train, StrategyKind, TrainConfig};
        let mut cfg = TrainConfig::new(
            Workload::AlexNetMnist,
            Topology::ring(2),
            StrategyKind::Marsit { k: Some(4) },
        );
        cfg.rounds = 6;
        cfg.train_examples = 256;
        cfg.test_examples = 64;
        cfg.batch_per_worker = 8;
        cfg.eval_every = 3;
        let report = train(&cfg);
        let dir = std::env::temp_dir().join("marsit_csv_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("run.csv");
        write_round_csv(&path, &report).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 6);
        assert!(lines[0].starts_with("round,train_loss"));
        assert!(lines[1].starts_with("0,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_bar_scales() {
        let p = PhaseBreakdown::new(1.0, 1.0, 2.0);
        let bar = phase_bar(p, 4.0, 40);
        assert_eq!(bar.matches('#').count(), 10);
        assert_eq!(bar.matches('%').count(), 10);
        assert_eq!(bar.matches('=').count(), 20);
    }
}
