//! Synthetic datasets and worker sharding for the Marsit reproduction.
//!
//! The paper's experiments use MNIST, CIFAR-10, ImageNet and IMDb reviews.
//! Those datasets (and the GPUs to train on them) are unavailable in this
//! environment, so this crate provides deterministic synthetic stand-ins
//! whose difficulty profiles mirror the originals — see
//! [`synthetic::mnist_like`], [`synthetic::cifar10_like`],
//! [`synthetic::imagenet_like`] and [`synthetic::imdb_like`], and the
//! substitution table in `DESIGN.md`.
//!
//! [`Dataset`] carries the examples and provides the IID equal-size sharding
//! the paper assumes for cloud training (Section 3: "all the local datasets
//! have an equal size").
//!
//! # Examples
//!
//! ```
//! use marsit_datagen::synthetic::mnist_like;
//!
//! let (train, test) = mnist_like().generate_split(1000, 200, 42);
//! let shards = train.shard_iid(8, 42); // one shard per worker
//! assert_eq!(shards.len(), 8);
//! assert!(shards.iter().all(|s| s.len() == 125));
//! assert_eq!(test.num_classes(), 10);
//! ```

pub mod dataset;
pub mod synthetic;

pub use dataset::Dataset;
pub use synthetic::{
    cifar10_like, imagenet_like, imdb_like, mnist_like, ClusterSpec, SentimentSpec,
};
