//! Synthetic dataset generators standing in for the paper's benchmarks.
//!
//! The paper evaluates on MNIST, CIFAR-10, ImageNet, and IMDb reviews, none
//! of which can be downloaded here. Each generator below produces a
//! deterministic synthetic task whose *difficulty profile* mimics its
//! namesake: easier tasks have widely separated class clusters (MNIST-like
//! accuracy saturates near 99%), harder tasks overlap heavily (CIFAR-like /
//! ImageNet-like plateau well below 100%). This preserves the phenomena the
//! paper studies — relative accuracy orderings between synchronization
//! strategies and the sensitivity of noisy gradients to one-bit compression —
//! while remaining fully reproducible.

use marsit_tensor::rng::{split_seed, FastRng};
use marsit_tensor::Tensor;

use crate::dataset::Dataset;

/// Configuration for a Gaussian-cluster classification task.
///
/// Examples of class `k` are drawn as `x = μ_k + ε`, with class means `μ_k`
/// sampled uniformly on a sphere of radius `separation` and `ε` i.i.d.
/// Gaussian noise of standard deviation `noise_std`. The Bayes accuracy is
/// controlled by the ratio `separation / noise_std`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Radius of the sphere the class means are drawn from.
    pub separation: f32,
    /// Standard deviation of the per-example noise.
    pub noise_std: f32,
}

impl ClusterSpec {
    /// Generates `n` examples with the given seed.
    ///
    /// The class means depend only on `seed`, so train and test splits drawn
    /// with different `stream` values share the same underlying task.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `dim == 0`, or `num_classes == 0`.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64, stream: u64) -> Dataset {
        assert!(
            n > 0 && self.dim > 0 && self.num_classes > 0,
            "degenerate spec"
        );
        let means = self.class_means(seed);
        let mut rng = FastRng::new(split_seed(seed, 0xC1A5), stream);
        let mut feats = Tensor::zeros(n, self.dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.next_range(self.num_classes as u64) as usize;
            labels.push(class);
            let noise = gaussian_vec(self.dim, self.noise_std, &mut rng);
            let row = feats.row_mut(i);
            for ((x, &m), e) in row.iter_mut().zip(means[class].iter()).zip(noise) {
                *x = m + e;
            }
        }
        Dataset::new(feats, labels, self.num_classes)
    }

    /// Generates a `(train, test)` pair sharing the same class means.
    #[must_use]
    pub fn generate_split(&self, train_n: usize, test_n: usize, seed: u64) -> (Dataset, Dataset) {
        (
            self.generate(train_n, seed, 1),
            self.generate(test_n, seed, 2),
        )
    }

    fn class_means(&self, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = FastRng::new(split_seed(seed, 0x3EA7), 0);
        (0..self.num_classes)
            .map(|_| {
                let mut v = gaussian_vec(self.dim, 1.0, &mut rng);
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                for x in &mut v {
                    *x *= self.separation / norm;
                }
                v
            })
            .collect()
    }
}

/// Configuration for a bag-of-words sentiment task (IMDb stand-in).
///
/// Each class has a word-frequency profile over a `vocab`-word vocabulary;
/// documents are multinomial draws of `doc_len` tokens, represented as
/// normalized count vectors. A fraction of `shared` vocabulary mass is common
/// to both classes, controlling difficulty.
#[derive(Debug, Clone, PartialEq)]
pub struct SentimentSpec {
    /// Vocabulary size (feature dimensionality).
    pub vocab: usize,
    /// Tokens per document.
    pub doc_len: usize,
    /// Fraction of probability mass on class-neutral words, in `[0, 1)`.
    pub shared: f64,
}

impl SentimentSpec {
    /// Generates `n` documents with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 4`, `doc_len == 0`, or `shared` is outside `[0, 1)`.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64, stream: u64) -> Dataset {
        assert!(self.vocab >= 4, "vocabulary too small");
        assert!(self.doc_len > 0, "doc_len must be positive");
        assert!((0.0..1.0).contains(&self.shared), "shared must be in [0,1)");
        let mut rng = FastRng::new(split_seed(seed, 0x5E27), stream);
        // Class-specific word sets: first half of the non-shared vocabulary
        // is "positive" vocabulary, second half "negative".
        let class_vocab = self.vocab / 2;
        let mut feats = Tensor::zeros(n, self.vocab);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.next_range(2) as usize;
            labels.push(class);
            let row = feats.row_mut(i);
            for _ in 0..self.doc_len {
                let word = if rng.bernoulli(self.shared) {
                    // Shared word: uniform over the whole vocabulary.
                    rng.next_range(self.vocab as u64) as usize
                } else {
                    // Class word: uniform over this class's half.
                    let base = class * class_vocab;
                    base + rng.next_range(class_vocab as u64) as usize
                };
                row[word.min(self.vocab - 1)] += 1.0;
            }
            // Normalize to term frequencies.
            let inv = 1.0 / self.doc_len as f32;
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
        Dataset::new(feats, labels, 2)
    }

    /// Generates a `(train, test)` pair.
    #[must_use]
    pub fn generate_split(&self, train_n: usize, test_n: usize, seed: u64) -> (Dataset, Dataset) {
        (
            self.generate(train_n, seed, 1),
            self.generate(test_n, seed, 2),
        )
    }
}

fn gaussian_vec(n: usize, std: f32, rng: &mut FastRng) -> Vec<f32> {
    let t = Tensor::gaussian(1, n, std, rng);
    t.into_vec()
}

/// MNIST stand-in: 10 well-separated classes in 64 dimensions.
///
/// Plain SGD reaches ≈99% test accuracy, matching Table 1's "no compression"
/// rows.
#[must_use]
pub fn mnist_like() -> ClusterSpec {
    ClusterSpec {
        dim: 64,
        num_classes: 10,
        separation: 5.0,
        noise_std: 1.0,
    }
}

/// CIFAR-10 stand-in: 10 overlapping classes in 256 dimensions.
///
/// Accuracy plateaus in the high-80s/low-90s under clean training, leaving
/// visible head-room for compression-induced accuracy drops (Table 2, Fig 3).
#[must_use]
pub fn cifar10_like() -> ClusterSpec {
    ClusterSpec {
        dim: 256,
        num_classes: 10,
        separation: 3.4,
        noise_std: 1.0,
    }
}

/// ImageNet stand-in: 50 heavily overlapping classes in 512 dimensions.
///
/// Uses 50 classes rather than 1000 to keep CPU runtimes tractable while
/// preserving the "hard many-class task" character (top-1 accuracy well below
/// 80%, as in Table 2's ImageNet rows).
#[must_use]
pub fn imagenet_like() -> ClusterSpec {
    ClusterSpec {
        dim: 512,
        num_classes: 50,
        separation: 4.2,
        noise_std: 1.0,
    }
}

/// IMDb stand-in: binary bag-of-words sentiment over a 512-word vocabulary.
#[must_use]
pub fn imdb_like() -> SentimentSpec {
    SentimentSpec {
        vocab: 512,
        doc_len: 64,
        shared: 0.85,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_generation_is_deterministic() {
        let spec = mnist_like();
        assert_eq!(spec.generate(50, 3, 0), spec.generate(50, 3, 0));
    }

    #[test]
    fn cluster_streams_differ_but_share_means() {
        let spec = mnist_like();
        let a = spec.generate(200, 3, 1);
        let b = spec.generate(200, 3, 2);
        assert_ne!(a, b);
        // Class means shared: per-class feature centroids should be close
        // across the two streams relative to the separation scale.
        let centroid = |ds: &Dataset, class: usize| -> Vec<f32> {
            let mut sum = vec![0.0f32; ds.dim()];
            let mut count = 0;
            for i in 0..ds.len() {
                let (x, l) = ds.example(i);
                if l == class {
                    for (s, &v) in sum.iter_mut().zip(x) {
                        *s += v;
                    }
                    count += 1;
                }
            }
            for s in &mut sum {
                *s /= count.max(1) as f32;
            }
            sum
        };
        let ca = centroid(&a, 0);
        let cb = centroid(&b, 0);
        let dist: f32 = ca
            .iter()
            .zip(&cb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        assert!(dist < 3.0, "same-class centroids too far apart: {dist}");
    }

    #[test]
    fn cluster_labels_cover_all_classes() {
        let ds = mnist_like().generate(2000, 1, 0);
        let hist = ds.class_histogram();
        assert!(hist.iter().all(|&c| c > 100), "unbalanced: {hist:?}");
    }

    #[test]
    fn split_shares_task() {
        let (train, test) = cifar10_like().generate_split(100, 50, 7);
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 50);
        assert_eq!(train.dim(), test.dim());
        assert_ne!(train, test.select(&(0..50).collect::<Vec<_>>()));
    }

    #[test]
    fn sentiment_rows_are_term_frequencies() {
        let ds = imdb_like().generate(20, 5, 0);
        for i in 0..ds.len() {
            let (x, _) = ds.example(i);
            let sum: f32 = x.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
            assert!(x.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn sentiment_classes_are_separable_in_aggregate() {
        let ds = imdb_like().generate(400, 11, 0);
        // Average mass on the first vocabulary half should be higher for
        // class 0 than class 1.
        let half = ds.dim() / 2;
        let mut mass = [0.0f64; 2];
        let mut count = [0usize; 2];
        for i in 0..ds.len() {
            let (x, l) = ds.example(i);
            mass[l] += x[..half].iter().map(|&v| f64::from(v)).sum::<f64>();
            count[l] += 1;
        }
        let m0 = mass[0] / count[0] as f64;
        let m1 = mass[1] / count[1] as f64;
        assert!(m0 > m1 + 0.05, "class mass not separated: {m0} vs {m1}");
    }

    #[test]
    fn named_specs_have_expected_shapes() {
        assert_eq!(mnist_like().num_classes, 10);
        assert_eq!(cifar10_like().dim, 256);
        assert_eq!(imagenet_like().num_classes, 50);
        assert_eq!(imdb_like().vocab, 512);
    }
}
