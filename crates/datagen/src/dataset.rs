//! In-memory labelled datasets and worker sharding.

use marsit_tensor::rng::FastRng;
use marsit_tensor::Tensor;

/// A labelled classification dataset held in memory.
///
/// Features are a dense `n × d` matrix, labels are class indices in
/// `[0, num_classes)`.
///
/// # Examples
///
/// ```
/// use marsit_datagen::Dataset;
/// use marsit_tensor::Tensor;
///
/// let ds = Dataset::new(Tensor::zeros(4, 2), vec![0, 1, 0, 1], 2);
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from a feature matrix and labels.
    ///
    /// # Panics
    ///
    /// Panics if `features.rows() != labels.len()`, if `num_classes == 0`,
    /// or if any label is out of range.
    #[must_use]
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature rows must match label count"
        );
        assert!(num_classes > 0, "num_classes must be positive");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Self {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full feature matrix.
    #[must_use]
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// The label vector.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature row of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn example(&self, i: usize) -> (&[f32], usize) {
        (self.features.row(i), self.labels[i])
    }

    /// Materializes the sub-dataset selected by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut feats = Tensor::zeros(indices.len(), self.dim());
        let mut labels = Vec::with_capacity(indices.len());
        for (row, &i) in indices.iter().enumerate() {
            feats.row_mut(row).copy_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        Dataset::new(feats, labels, self.num_classes)
    }

    /// Splits the dataset into `m` equal-size IID shards, one per worker.
    ///
    /// Examples are shuffled with `seed` and dealt round-robin; any remainder
    /// examples (at most `m − 1`) are dropped so that all shards have equal
    /// size, matching the paper's assumption that "all the local datasets
    /// have an equal size" (Section 3).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > len`.
    #[must_use]
    pub fn shard_iid(&self, m: usize, seed: u64) -> Vec<Dataset> {
        assert!(m > 0, "worker count must be positive");
        assert!(m <= self.len(), "more workers than examples");
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = FastRng::new(seed, 0xDA7A);
        // Fisher–Yates shuffle.
        for i in (1..indices.len()).rev() {
            let j = rng.next_range(i as u64 + 1) as usize;
            indices.swap(i, j);
        }
        let per = self.len() / m;
        (0..m)
            .map(|w| self.select(&indices[w * per..(w + 1) * per]))
            .collect()
    }

    /// Splits the dataset into `m` *label-skewed* shards: each worker's
    /// class mix is drawn from a Dirichlet(`alpha`) distribution over
    /// classes, the standard non-IID benchmark protocol. Small `alpha`
    /// (e.g. 0.1) gives near-single-class workers; large `alpha` approaches
    /// IID. Shards are truncated to equal size.
    ///
    /// The paper *assumes* IID cloud data (Section 3 and the compensation
    /// argument of Section 4.1.3); this sharding exists to probe what
    /// happens when that assumption breaks.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `m > len`, or `alpha <= 0`.
    #[must_use]
    pub fn shard_dirichlet(&self, m: usize, alpha: f64, seed: u64) -> Vec<Dataset> {
        assert!(m > 0, "worker count must be positive");
        assert!(m <= self.len(), "more workers than examples");
        assert!(alpha > 0.0, "alpha must be positive");
        let mut rng = FastRng::new(seed, 0xD112);
        // Per-class index pools, shuffled.
        let mut pools: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            pools[l].push(i);
        }
        for pool in &mut pools {
            for i in (1..pool.len()).rev() {
                let j = rng.next_range(i as u64 + 1) as usize;
                pool.swap(i, j);
            }
        }
        // Worker-by-class proportions: Dirichlet(alpha) via normalized
        // Gamma(alpha) draws (Marsaglia–Tsang would be overkill; use the
        // sum-of-exponentials approximation for alpha via Johnk/Best is
        // fiddly — instead use the inverse-power trick valid for the
        // qualitative skew: weight ∝ u^(1/alpha)).
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); m];
        for pool in &pools {
            let weights: Vec<f64> = (0..m)
                .map(|_| rng.next_f64().max(1e-12).powf(1.0 / alpha))
                .collect();
            let total: f64 = weights.iter().sum();
            let mut cursor = 0usize;
            for (w, &wt) in weights.iter().enumerate() {
                let take = if w + 1 == m {
                    pool.len() - cursor
                } else {
                    ((wt / total) * pool.len() as f64).round() as usize
                };
                let take = take.min(pool.len() - cursor);
                assignments[w].extend_from_slice(&pool[cursor..cursor + take]);
                cursor += take;
            }
        }
        // Rebalance to exactly `len/m` examples per worker without dropping
        // data: surplus workers donate their excess (least-skew-relevant
        // tail first) to deficit workers. The union of shards keeps full
        // class coverage, so non-IID effects come from the *distribution*,
        // not from lost examples.
        let per = self.len() / m;
        let mut surplus: Vec<usize> = Vec::new();
        for idx in &mut assignments {
            while idx.len() > per {
                surplus.push(idx.pop().expect("surplus from over-quota shard"));
            }
        }
        for idx in &mut assignments {
            while idx.len() < per {
                idx.push(surplus.pop().expect("quota arithmetic guarantees supply"));
            }
        }
        assignments
            .into_iter()
            .map(|idx| self.select(&idx))
            .collect()
    }

    /// Draws a random minibatch of `batch_size` examples (with replacement).
    ///
    /// Sampling with replacement matches the stochastic-gradient model of the
    /// paper's analysis (`ξ ~ D_m` i.i.d. per round).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `batch_size == 0`.
    #[must_use]
    pub fn sample_batch(&self, batch_size: usize, rng: &mut FastRng) -> Dataset {
        assert!(!self.is_empty(), "cannot sample from empty dataset");
        assert!(batch_size > 0, "batch size must be positive");
        let indices: Vec<usize> = (0..batch_size)
            .map(|_| rng.next_range(self.len() as u64) as usize)
            .collect();
        self.select(&indices)
    }

    /// Per-class example counts.
    #[must_use]
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut feats = Tensor::zeros(n, 3);
        let mut labels = Vec::new();
        for i in 0..n {
            feats.set(i, 0, i as f32);
            labels.push(i % 4);
        }
        Dataset::new(feats, labels, 4)
    }

    #[test]
    fn select_preserves_rows() {
        let ds = toy(10);
        let sub = ds.select(&[3, 7]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.example(0).0[0], 3.0);
        assert_eq!(sub.example(1).0[0], 7.0);
        assert_eq!(sub.example(0).1, 3);
    }

    #[test]
    fn shard_sizes_equal_and_disjoint() {
        let ds = toy(103);
        let shards = ds.shard_iid(8, 5);
        assert_eq!(shards.len(), 8);
        for s in &shards {
            assert_eq!(s.len(), 12); // 103 / 8 = 12, remainder dropped
        }
        // Disjointness: first feature value identifies the source row.
        let mut seen = std::collections::HashSet::new();
        for s in &shards {
            for i in 0..s.len() {
                let id = s.example(i).0[0] as usize;
                assert!(seen.insert(id), "example {id} appears in two shards");
            }
        }
    }

    #[test]
    fn shard_is_deterministic() {
        let ds = toy(40);
        assert_eq!(ds.shard_iid(4, 9), ds.shard_iid(4, 9));
    }

    #[test]
    fn sample_batch_shapes() {
        let ds = toy(10);
        let mut rng = FastRng::new(0, 0);
        let b = ds.sample_batch(5, &mut rng);
        assert_eq!(b.len(), 5);
        assert_eq!(b.dim(), 3);
        assert_eq!(b.num_classes(), 4);
    }

    #[test]
    fn class_histogram_counts() {
        let ds = toy(8);
        assert_eq!(ds.class_histogram(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn dirichlet_sharding_is_skewed_and_equal_sized() {
        let ds = toy(400);
        let skewed = ds.shard_dirichlet(4, 0.1, 7);
        assert_eq!(skewed.len(), 4);
        let size = skewed[0].len();
        assert!(size > 0);
        assert!(skewed.iter().all(|s| s.len() == size));
        // Skew: at least one worker's class histogram is far from uniform.
        let max_fraction = skewed
            .iter()
            .map(|s| {
                let hist = s.class_histogram();
                *hist.iter().max().expect("classes") as f64 / s.len() as f64
            })
            .fold(0.0, f64::max);
        assert!(max_fraction > 0.5, "no skew observed: {max_fraction}");
        // IID reference stays near 0.25 per class.
        let iid = ds.shard_iid(4, 7);
        let iid_max = iid
            .iter()
            .map(|s| {
                let hist = s.class_histogram();
                *hist.iter().max().expect("classes") as f64 / s.len() as f64
            })
            .fold(0.0, f64::max);
        assert!(
            iid_max < 0.4,
            "IID sharding should stay balanced: {iid_max}"
        );
    }

    #[test]
    fn dirichlet_high_alpha_approaches_iid() {
        let ds = toy(400);
        let shards = ds.shard_dirichlet(4, 100.0, 3);
        for s in &shards {
            let hist = s.class_histogram();
            let max = *hist.iter().max().expect("classes") as f64 / s.len() as f64;
            assert!(max < 0.45, "alpha=100 should be near uniform: {max}");
        }
    }

    #[test]
    fn dirichlet_is_deterministic() {
        let ds = toy(100);
        assert_eq!(ds.shard_dirichlet(5, 0.3, 9), ds.shard_dirichlet(5, 0.3, 9));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = Dataset::new(Tensor::zeros(1, 1), vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "more workers than examples")]
    fn too_many_workers_panics() {
        let _ = toy(4).shard_iid(5, 0);
    }
}
