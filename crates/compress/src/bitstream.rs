//! LSB-first bit stream reader/writer.
//!
//! The wire format for variable-width payloads (Elias-coded sign sums,
//! packed integers of growing width) — the mechanism the paper refers to as
//! "dynamically changing the bit length" with Elias coding when extending
//! signSGD baselines to MAR.

/// Appends variable-width values into a growing bit buffer.
///
/// # Examples
///
/// ```
/// use marsit_compress::bitstream::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFFFF, 16);
/// let buf = w.finish();
/// let mut r = BitReader::new(&buf);
/// assert_eq!(r.read_bits(3), Some(0b101));
/// assert_eq!(r.read_bits(16), Some(0xFFFF));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0..8); 0 means byte-aligned.
    bit_pos: u32,
    total_bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits above `width`.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width must be <= 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let space = 8 - self.bit_pos;
            let take = space.min(remaining);
            let chunk = (v & ((1u64 << take) - 1)) as u8;
            *self.bytes.last_mut().expect("byte pushed above") |= chunk << self.bit_pos;
            self.bit_pos = (self.bit_pos + take) % 8;
            v >>= take;
            remaining -= take;
        }
        self.total_bits += width as usize;
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Total bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.total_bits
    }

    /// Finishes the stream, returning the packed bytes (final byte padded
    /// with zero bits).
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads variable-width values from a bit buffer produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_idx: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, bit_idx: 0 }
    }

    /// Reads `width` bits (LSB first); `None` if the buffer is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: u32) -> Option<u64> {
        assert!(width <= 64, "width must be <= 64");
        if self.bit_idx + width as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        for i in 0..width {
            let idx = self.bit_idx + i as usize;
            let bit = (self.bytes[idx / 8] >> (idx % 8)) & 1;
            out |= u64::from(bit) << i;
        }
        self.bit_idx += width as usize;
        Some(out)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b == 1)
    }

    /// Bits consumed so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.bit_idx
    }

    /// Bits remaining in the buffer.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.bit_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let buf = w.finish();
        assert_eq!(buf.len(), 2);
        let mut r = BitReader::new(&buf);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn mixed_width_round_trip() {
        let mut w = BitWriter::new();
        let values = [(5u64, 3u32), (0, 1), (1023, 10), (u64::MAX, 64), (7, 5)];
        for &(v, width) in &values {
            w.write_bits(v, width);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &(v, width) in &values {
            assert_eq!(r.read_bits(width), Some(v), "width {width}");
        }
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(3, 2);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(2), Some(3));
        // Padding bits are readable (zero), but beyond the byte it's None.
        assert_eq!(r.read_bits(6), Some(0));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn position_tracking() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.write_bits(0b1, 1);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        let _ = r.read_bits(2);
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 6);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.write_bits(8, 3);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }
}
