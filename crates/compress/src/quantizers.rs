//! Multi-level stochastic quantizers from the paper's related work:
//! TernGrad (Wen et al., NeurIPS'17) and QSGD (Alistarh et al., NeurIPS'17).
//!
//! Both are *unbiased* like SSDM but spend more than one bit per coordinate;
//! they ground the related-work claim that quantization approaches trade
//! precision for bits on a spectrum whose one-bit extreme is the sign
//! family. Their payloads are small integers, Elias-coded on the wire like
//! the MAR sign sums.

use marsit_tensor::rng::FastRng;

use crate::elias;

/// A quantized gradient: one scalar scale plus small signed integer levels.
///
/// Decodes to `scale · level_j`. TernGrad uses levels in `{−1, 0, +1}`;
/// QSGD in `{−s, …, +s}`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMessage {
    scale: f32,
    levels: Vec<i8>,
}

impl QuantizedMessage {
    /// Creates a message.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    #[must_use]
    pub fn new(scale: f32, levels: Vec<i8>) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "scale must be finite and non-negative"
        );
        Self { scale, levels }
    }

    /// The scalar scale.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The per-coordinate integer levels.
    #[must_use]
    pub fn levels(&self) -> &[i8] {
        &self.levels
    }

    /// Number of coordinates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the message covers zero coordinates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Decoded values `scale · level_j`.
    #[must_use]
    pub fn to_values(&self) -> Vec<f32> {
        self.levels
            .iter()
            .map(|&l| self.scale * f32::from(l))
            .collect()
    }

    /// Exact Elias-γ wire size in bits, plus the 32-bit scale.
    #[must_use]
    pub fn wire_bits(&self) -> usize {
        let values: Vec<i64> = self.levels.iter().map(|&l| i64::from(l)).collect();
        32 + elias::encoded_bits_signed(&values)
    }
}

/// TernGrad: ternarize to `s·sign(g_j)·b_j` with `s = max_j |g_j|` and
/// `b_j ~ Bernoulli(|g_j|/s)` — unbiased by construction.
///
/// # Examples
///
/// ```
/// use marsit_compress::quantizers::terngrad;
/// use marsit_tensor::rng::FastRng;
///
/// let mut rng = FastRng::new(0, 0);
/// let msg = terngrad(&[0.5, -1.0, 0.0], &mut rng);
/// assert_eq!(msg.scale(), 1.0);
/// assert!(msg.levels().iter().all(|l| (-1..=1).contains(l)));
/// ```
#[must_use]
pub fn terngrad(values: &[f32], rng: &mut FastRng) -> QuantizedMessage {
    let s = values.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    if s == 0.0 {
        return QuantizedMessage::new(0.0, vec![0; values.len()]);
    }
    let levels = values
        .iter()
        .map(|&v| {
            let p = f64::from(v.abs() / s);
            if rng.bernoulli(p) {
                if v >= 0.0 {
                    1
                } else {
                    -1
                }
            } else {
                0
            }
        })
        .collect();
    QuantizedMessage::new(s, levels)
}

/// QSGD with `s` levels: `‖g‖₂ · sign(g_j) · ξ_j/s` where `ξ_j`
/// stochastically rounds `s·|g_j|/‖g‖₂` to a neighbouring integer —
/// unbiased, with levels concentrated near zero for large `D`.
///
/// # Panics
///
/// Panics if `s == 0` or `s > 127`.
#[must_use]
pub fn qsgd(values: &[f32], s: u8, rng: &mut FastRng) -> QuantizedMessage {
    assert!(s > 0, "QSGD needs at least one level");
    let norm = marsit_tensor::stats::norm_l2(values);
    if norm == 0.0 {
        return QuantizedMessage::new(0.0, vec![0; values.len()]);
    }
    let levels = values
        .iter()
        .map(|&v| {
            let x = f64::from(v.abs() / norm) * f64::from(s);
            let floor = x.floor();
            let level = if rng.bernoulli(x - floor) {
                floor + 1.0
            } else {
                floor
            };
            let signed = if v >= 0.0 { level } else { -level };
            signed as i8
        })
        .collect();
    // Decode is scale·level with scale = ‖g‖/s.
    QuantizedMessage::new(norm / f32::from(s), levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_tensor::stats::norm_l2;

    fn mean_decode(
        f: impl Fn(&mut FastRng) -> QuantizedMessage,
        d: usize,
        trials: u32,
    ) -> Vec<f64> {
        let mut rng = FastRng::new(9, 0);
        let mut mean = vec![0.0f64; d];
        for _ in 0..trials {
            let msg = f(&mut rng);
            for (m, v) in mean.iter_mut().zip(msg.to_values()) {
                *m += f64::from(v) / f64::from(trials);
            }
        }
        mean
    }

    #[test]
    fn terngrad_is_unbiased() {
        let g = [0.5f32, -1.0, 0.25, 0.0, -0.125, 0.8];
        let mean = mean_decode(|rng| terngrad(&g, rng), g.len(), 40_000);
        for (j, (&gj, m)) in g.iter().zip(&mean).enumerate() {
            assert!((m - f64::from(gj)).abs() < 0.02, "coord {j}: {m} vs {gj}");
        }
    }

    #[test]
    fn qsgd_is_unbiased() {
        let g = [0.5f32, -1.0, 0.25, 0.0, -0.125, 0.8];
        for s in [1u8, 4, 16] {
            let mean = mean_decode(|rng| qsgd(&g, s, rng), g.len(), 40_000);
            for (j, (&gj, m)) in g.iter().zip(&mean).enumerate() {
                assert!(
                    (m - f64::from(gj)).abs() < 0.05,
                    "s={s} coord {j}: {m} vs {gj}"
                );
            }
        }
    }

    #[test]
    fn qsgd_variance_shrinks_with_levels() {
        let g: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.3).sin()).collect();
        let var = |s: u8| -> f64 {
            let mut rng = FastRng::new(3, u64::from(s));
            let trials = 3000;
            let mut total = 0.0;
            for _ in 0..trials {
                let msg = qsgd(&g, s, &mut rng);
                total += marsit_tensor::stats::dist_sq(&msg.to_values(), &g);
            }
            total / f64::from(trials)
        };
        let v1 = var(1);
        let v16 = var(16);
        assert!(v16 < v1 / 8.0, "s=1 var {v1} vs s=16 var {v16}");
    }

    #[test]
    fn terngrad_levels_are_ternary_and_max_scale() {
        let g = [3.0f32, -7.0, 1.0];
        let mut rng = FastRng::new(1, 0);
        let msg = terngrad(&g, &mut rng);
        assert_eq!(msg.scale(), 7.0);
        assert!(msg.levels().iter().all(|l| (-1..=1).contains(l)));
        // The max-magnitude coordinate always survives (p = 1).
        assert_eq!(msg.levels()[1], -1);
    }

    #[test]
    fn qsgd_wire_bits_grow_with_levels() {
        let g: Vec<f32> = (0..512).map(|i| ((i as f32) * 0.17).cos()).collect();
        let mut rng = FastRng::new(2, 0);
        let small = qsgd(&g, 1, &mut rng).wire_bits();
        let large = qsgd(&g, 64, &mut rng).wire_bits();
        assert!(
            large > small,
            "more levels must cost more bits: {small} vs {large}"
        );
        // And both sit far below fp32.
        assert!(large < 32 * g.len());
    }

    #[test]
    fn qsgd_one_level_decodes_on_norm_grid() {
        let g = [0.6f32, -0.8];
        let mut rng = FastRng::new(4, 0);
        let msg = qsgd(&g, 1, &mut rng);
        let norm = norm_l2(&g);
        for v in msg.to_values() {
            assert!(v.abs() < norm + 1e-6);
            let k = v / norm;
            assert!((k - k.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_vector_messages_decode_to_zero() {
        let mut rng = FastRng::new(5, 0);
        assert!(terngrad(&[0.0; 4], &mut rng)
            .to_values()
            .iter()
            .all(|&v| v == 0.0));
        assert!(qsgd(&[0.0; 4], 4, &mut rng)
            .to_values()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn qsgd_zero_levels_panics() {
        let mut rng = FastRng::new(0, 0);
        let _ = qsgd(&[1.0], 0, &mut rng);
    }
}
