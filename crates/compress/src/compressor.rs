//! Worker-side gradient compressors.
//!
//! Each baseline in the paper's Table 2 compresses the local gradient into a
//! [`SignMessage`] before synchronization:
//!
//! - [`PlainSign`] — signSGD (Bernstein et al.): deterministic signs,
//!   unit scale; aggregated by majority vote.
//! - [`EfSign`] — EF-signSGD (Karimireddy et al.): error feedback memory
//!   `e`, message `(‖p‖₁/D, sign(p))` with `p = g + e`.
//! - [`Ssdm`] — SSDM (Safaryan & Richtárik): stochastic signs taken with
//!   probability `½ + v_j/(2‖v‖₂)`, unbiased decode `‖v‖₂·σ`.
//!
//! Compressors carry their own state (EF memory) and report their codec
//! cost in streaming/RNG passes over the gradient, which the simulator
//! converts into the compression-phase times of Figures 1a and 5.

use marsit_tensor::rng::FastRng;
use marsit_tensor::stats::norm_l1;
use marsit_tensor::SignVec;

use crate::message::SignMessage;

/// A stateful worker-side compressor from gradients to sign messages.
pub trait Compressor: Send {
    /// Compresses `grad`, possibly updating internal state (error feedback).
    ///
    /// `rng` drives any stochastic rounding; deterministic compressors
    /// ignore it.
    fn compress(&mut self, grad: &[f32], rng: &mut FastRng) -> SignMessage;

    /// Resets internal state.
    fn reset(&mut self);

    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Streaming passes over the gradient per compression (norms, sign
    /// extraction, error update). Used by the compression-time model.
    fn codec_passes(&self) -> f64;

    /// RNG-driven passes over the gradient per compression.
    fn rng_passes(&self) -> f64;
}

/// signSGD: deterministic signs with unit scale.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlainSign;

impl PlainSign {
    /// Creates the signSGD compressor.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Compressor for PlainSign {
    fn compress(&mut self, grad: &[f32], _rng: &mut FastRng) -> SignMessage {
        SignMessage::new(SignVec::from_signs(grad), 1.0)
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "signSGD"
    }

    fn codec_passes(&self) -> f64 {
        1.0 // sign extraction
    }

    fn rng_passes(&self) -> f64 {
        0.0
    }
}

/// EF-signSGD: error-feedback sign compression.
///
/// Maintains the residual memory `e`; each round compresses `p = g + e` into
/// `Δ = (‖p‖₁/D)·sign(p)` and stores `e ← p − Δ`. Error feedback is what
/// restores convergence for biased sign compression.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EfSign {
    error: Vec<f32>,
}

impl EfSign {
    /// Creates an EF-signSGD compressor with zero memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current residual memory (empty before the first compression).
    #[must_use]
    pub fn error(&self) -> &[f32] {
        &self.error
    }
}

impl Compressor for EfSign {
    fn compress(&mut self, grad: &[f32], _rng: &mut FastRng) -> SignMessage {
        if self.error.is_empty() {
            self.error = vec![0.0; grad.len()];
        }
        assert_eq!(self.error.len(), grad.len(), "gradient length changed");
        let p: Vec<f32> = grad.iter().zip(&self.error).map(|(&g, &e)| g + e).collect();
        let scale = norm_l1(&p) / p.len() as f32;
        let signs = SignVec::from_signs(&p);
        for ((e, &pi), s) in self.error.iter_mut().zip(&p).zip(signs.iter()) {
            *e = pi - if s { scale } else { -scale };
        }
        SignMessage::new(signs, scale)
    }

    fn reset(&mut self) {
        self.error.clear();
    }

    fn name(&self) -> &'static str {
        "EF-signSGD"
    }

    fn codec_passes(&self) -> f64 {
        4.0 // p = g + e, ℓ1 norm, sign extraction, error update
    }

    fn rng_passes(&self) -> f64 {
        0.0
    }
}

/// SSDM: unbiased stochastic sign compression.
///
/// Coordinate `j` is encoded `+1` with probability `½ + v_j/(2‖v‖₂)`, so the
/// decode `‖v‖₂·σ_j` is an unbiased estimator of `v_j` (the paper's
/// appendix operator `Q`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ssdm;

impl Ssdm {
    /// Creates the SSDM compressor.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Stochastic-sign compression of `values` as a standalone operation —
    /// the `Q(·)` used by the cascading-compression pipeline and the
    /// deviation experiments of Theorems 2 and 3.
    #[must_use]
    pub fn quantize(values: &[f32], rng: &mut FastRng) -> SignMessage {
        // The ℓ2-norm is computed in f64 and saturated: cascading
        // compression inflates the running norm by ~√D per hop, which
        // overflows f32 within a dozen hops — the method's divergence is a
        // result we must report, not a crash.
        let norm = marsit_tensor::stats::norm_l2_sq(values).sqrt();
        if norm == 0.0 {
            // Zero vector: any sign decodes to zero via zero scale.
            return SignMessage::new(SignVec::zeros(values.len()), 0.0);
        }
        let inv = 1.0 / (2.0 * norm);
        let mut signs = SignVec::zeros(values.len());
        for (j, &v) in values.iter().enumerate() {
            let p_plus = (0.5 + f64::from(v) * inv).clamp(0.0, 1.0);
            if rng.bernoulli(p_plus) {
                signs.set(j, true);
            }
        }
        let scale = if norm.is_finite() && norm < f64::from(f32::MAX) {
            norm as f32
        } else {
            f32::MAX
        };
        SignMessage::new(signs, scale)
    }
}

impl Compressor for Ssdm {
    fn compress(&mut self, grad: &[f32], rng: &mut FastRng) -> SignMessage {
        Self::quantize(grad, rng)
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "SSDM"
    }

    fn codec_passes(&self) -> f64 {
        1.0 // ℓ2 norm
    }

    fn rng_passes(&self) -> f64 {
        1.0 // per-coordinate Bernoulli draw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sign_unit_scale() {
        let msg = PlainSign::new().compress(&[0.3, -0.7], &mut FastRng::new(0, 0));
        assert_eq!(msg.scale(), 1.0);
        assert_eq!(msg.to_values(), vec![1.0, -1.0]);
    }

    #[test]
    fn ef_sign_error_feedback_telescopes() {
        // After compressing g with memory e, we must have p = Δ + e_new,
        // i.e. nothing is lost: g + e_old = decoded + e_new.
        let mut ef = EfSign::new();
        let g1 = [0.5f32, -1.5, 0.25, 2.0];
        let msg = ef.compress(&g1, &mut FastRng::new(0, 0));
        let decoded = msg.to_values();
        for i in 0..4 {
            let lhs = g1[i]; // e_old = 0
            let rhs = decoded[i] + ef.error()[i];
            assert!((lhs - rhs).abs() < 1e-6, "coord {i}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn ef_sign_memory_shrinks_repeated_constant_gradient() {
        // Feeding the same gradient repeatedly, EF's applied sum approaches
        // the true sum: cumulative decoded ≈ cumulative gradient.
        let mut ef = EfSign::new();
        let g = [1.0f32, -0.1, 0.5, -2.0];
        let mut applied = [0.0f32; 4];
        let rounds = 200;
        for _ in 0..rounds {
            let msg = ef.compress(&g, &mut FastRng::new(0, 0));
            for (a, d) in applied.iter_mut().zip(msg.to_values()) {
                *a += d;
            }
        }
        for i in 0..4 {
            let target = g[i] * rounds as f32;
            let rel = (applied[i] - target).abs() / target.abs().max(1.0);
            assert!(
                rel < 0.05,
                "coord {i}: applied {} target {}",
                applied[i],
                target
            );
        }
    }

    #[test]
    fn ssdm_is_unbiased() {
        let v = [1.0f32, -2.0, 0.5, 0.0, -0.25, 3.0];
        let mut rng = FastRng::new(7, 0);
        let trials = 30_000;
        let mut mean = vec![0.0f64; v.len()];
        for _ in 0..trials {
            let msg = Ssdm::quantize(&v, &mut rng);
            for (m, d) in mean.iter_mut().zip(msg.to_values()) {
                *m += f64::from(d);
            }
        }
        let norm = marsit_tensor::stats::norm_l2(&v);
        for (j, (&vj, m)) in v.iter().zip(&mean).enumerate() {
            let est = m / f64::from(trials as u32);
            // Standard error of the mean is ~norm/sqrt(trials).
            let tol = 4.0 * f64::from(norm) / f64::from(trials as u32).sqrt();
            assert!(
                (est - f64::from(vj)).abs() < tol,
                "coord {j}: estimate {est} vs true {vj} (tol {tol})"
            );
        }
    }

    #[test]
    fn ssdm_zero_vector_decodes_to_zero() {
        let msg = Ssdm::quantize(&[0.0; 8], &mut FastRng::new(0, 0));
        assert_eq!(msg.scale(), 0.0);
        assert!(msg.to_values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ssdm_probability_clamps_extremes() {
        // A one-hot vector: that coordinate has p(+1) = 1 exactly.
        let v = [5.0f32, 0.0, 0.0];
        let mut rng = FastRng::new(1, 0);
        for _ in 0..100 {
            let msg = Ssdm::quantize(&v, &mut rng);
            assert!(msg.signs().get(0), "dominant coordinate must stay +");
        }
    }

    #[test]
    fn reset_clears_ef_memory() {
        let mut ef = EfSign::new();
        let _ = ef.compress(&[1.0, 2.0], &mut FastRng::new(0, 0));
        assert!(!ef.error().is_empty());
        ef.reset();
        assert!(ef.error().is_empty());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            PlainSign::new().name(),
            EfSign::new().name(),
            Ssdm::new().name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
