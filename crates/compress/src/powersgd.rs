//! PowerSGD: practical low-rank gradient compression (Vogels et al.,
//! NeurIPS'19 — the paper's related work \[24\]).
//!
//! The gradient is viewed as a matrix `G (n×m)` and approximated as
//! `P Qᵀ` with rank `r`, refreshed by one power iteration per round:
//! `P = G Q̂_prev` (then orthogonalized), `Q = Gᵀ P`. Compression is
//! *linear* in `G`, so it composes with all-reduce — but it needs **two
//! sequential all-reduce rounds per synchronization** (one for `P`, one for
//! `Q`), which is exactly the inefficiency under RAR that the paper's
//! related-work section calls out. Reconstruction is biased; error feedback
//! restores convergence.

use marsit_tensor::rng::FastRng;
use marsit_tensor::Tensor;

/// Chooses a near-square matrix shape `(rows, cols)` with
/// `rows·cols ≥ d` for reshaping a flat gradient.
#[must_use]
pub fn matrix_shape(d: usize) -> (usize, usize) {
    assert!(d > 0, "dimension must be positive");
    let rows = (d as f64).sqrt().ceil() as usize;
    let cols = d.div_ceil(rows);
    (rows, cols)
}

/// Modified Gram–Schmidt orthonormalization of the columns of `m`, in
/// place. Zero columns are left untouched (their norm guard keeps them 0).
pub fn orthonormalize_columns(m: &mut Tensor) {
    let (rows, cols) = m.shape();
    for c in 0..cols {
        // Subtract projections onto previous columns.
        for prev in 0..c {
            let mut dot = 0.0f32;
            for r in 0..rows {
                dot += m.get(r, c) * m.get(r, prev);
            }
            for r in 0..rows {
                let v = m.get(r, c) - dot * m.get(r, prev);
                m.set(r, c, v);
            }
        }
        let mut norm = 0.0f32;
        for r in 0..rows {
            norm += m.get(r, c) * m.get(r, c);
        }
        let norm = norm.sqrt();
        if norm > 1e-12 {
            let inv = 1.0 / norm;
            for r in 0..rows {
                m.set(r, c, m.get(r, c) * inv);
            }
        }
    }
}

/// One worker's PowerSGD state: the warm-started `Q` factor and the error
/// feedback memory.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSgd {
    rows: usize,
    cols: usize,
    rank: usize,
    d: usize,
    q: Tensor,
    error: Vec<f32>,
}

/// The two low-rank factors transmitted per round.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerFactors {
    /// Left factor `P (rows×rank)`, already orthonormalized.
    pub p: Tensor,
    /// Right factor `Q (cols×rank)`.
    pub q: Tensor,
}

impl PowerFactors {
    /// Wire size of one worker's factors in bits (fp32 entries).
    #[must_use]
    pub fn wire_bits(&self) -> usize {
        (self.p.len() + self.q.len()) * 32
    }

    /// Number of *sequential* all-reduce rounds this scheme needs
    /// (P first, then Q — the RAR inefficiency the paper notes).
    #[must_use]
    pub fn sequential_rounds(&self) -> usize {
        2
    }
}

impl PowerSgd {
    /// Creates a compressor for `d`-dimensional gradients at the given rank.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `rank == 0`.
    #[must_use]
    pub fn new(d: usize, rank: usize, seed: u64) -> Self {
        assert!(d > 0 && rank > 0, "dimension and rank must be positive");
        let (rows, cols) = matrix_shape(d);
        let rank = rank.min(cols).min(rows);
        let mut rng = FastRng::new(seed, 0x90E5);
        let q = Tensor::gaussian(cols, rank, 1.0, &mut rng);
        Self {
            rows,
            cols,
            rank,
            d,
            q,
            error: vec![0.0; d],
        }
    }

    /// The rank actually used (clamped to the matrix shape).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The matrix shape used for reshaping.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Current error-feedback memory.
    #[must_use]
    pub fn error(&self) -> &[f32] {
        &self.error
    }

    /// Reshapes `grad + error` into the padded matrix (the distributed
    /// protocol's view of this worker's compensated gradient).
    pub fn to_matrix(&self, grad: &[f32]) -> Tensor {
        let mut m = Tensor::zeros(self.rows, self.cols);
        let buf = m.as_mut_slice();
        for (i, (&g, &e)) in grad.iter().zip(&self.error).enumerate() {
            buf[i] = g + e;
        }
        m
    }

    /// Compresses `grad` (with error feedback) into low-rank factors and
    /// updates the memory against the local reconstruction.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the configured dimension.
    pub fn compress(&mut self, grad: &[f32]) -> PowerFactors {
        assert_eq!(grad.len(), self.d, "gradient length mismatch");
        let g = self.to_matrix(grad);
        // One power iteration: P = G·Q̂, orthonormalize, Q = Gᵀ·P.
        let mut p = g.matmul(&self.q);
        orthonormalize_columns(&mut p);
        let q = g.matmul_tn(&p);
        // Local reconstruction Ĝ = P·Qᵀ and error update.
        let reconstruction = p.matmul_nt(&q);
        let rec = reconstruction.as_slice();
        for (i, ((e, &gv), &r)) in self.error.iter_mut().zip(grad).zip(rec.iter()).enumerate() {
            let _ = i;
            *e = gv + *e - r;
        }
        self.q = q.clone();
        PowerFactors { p, q }
    }

    /// Decodes factors back into a flat gradient approximation.
    #[must_use]
    pub fn decode(&self, factors: &PowerFactors) -> Vec<f32> {
        let rec = factors.p.matmul_nt(&factors.q);
        rec.as_slice()[..self.d].to_vec()
    }

    /// Round 1 of the distributed protocol: this worker's contribution
    /// `P_w = (G_w + e_w)·Q̂` to the first all-reduce.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len()` differs from the configured dimension.
    #[must_use]
    pub fn project_p(&self, grad: &[f32]) -> Tensor {
        assert_eq!(grad.len(), self.d, "gradient length mismatch");
        self.to_matrix(grad).matmul(&self.q)
    }

    /// Round 2 of the distributed protocol: this worker's contribution
    /// `Q_w = (G_w + e_w)ᵀ·P̄` to the second all-reduce, given the
    /// orthonormalized mean `p_mean`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn project_q(&self, grad: &[f32], p_mean: &Tensor) -> Tensor {
        assert_eq!(grad.len(), self.d, "gradient length mismatch");
        self.to_matrix(grad).matmul_tn(p_mean)
    }

    /// Finishes the round: absorbs the shared reconstruction into the error
    /// memory and warm-starts `Q` for the next round.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn absorb(&mut self, grad: &[f32], reconstruction: &[f32], q_mean: &Tensor) {
        assert_eq!(grad.len(), self.d, "gradient length mismatch");
        assert_eq!(
            reconstruction.len(),
            self.d,
            "reconstruction length mismatch"
        );
        for ((e, &g), &r) in self.error.iter_mut().zip(grad).zip(reconstruction) {
            *e = g + *e - r;
        }
        self.q = q_mean.clone();
    }

    /// Reconstructs the flat gradient `P̄·Q̄ᵀ` truncated to `d`.
    #[must_use]
    pub fn reconstruct(&self, p_mean: &Tensor, q_mean: &Tensor) -> Vec<f32> {
        p_mean.matmul_nt(q_mean).as_slice()[..self.d].to_vec()
    }

    /// Resets the memory and re-seeds `Q`.
    pub fn reset(&mut self, seed: u64) {
        let mut rng = FastRng::new(seed, 0x90E5);
        self.q = Tensor::gaussian(self.cols, self.rank, 1.0, &mut rng);
        self.error.fill(0.0);
    }
}

/// Distributed PowerSGD aggregation: averages the workers' `P = G_w·Q̂`
/// products, orthonormalizes, then averages `Q_w = G_wᵀ·P` — two sequential
/// linear all-reduce passes. Returns the mean-gradient approximation and
/// the total bits a ring all-reduce of both factor sets would move per
/// worker.
///
/// All workers must share the same warm-start `Q̂` (they do when created
/// with the same seed and fed the same schedule), which this function
/// asserts.
///
/// # Panics
///
/// Panics if worker counts mismatch or dimensions differ.
#[must_use]
pub fn powersgd_allreduce(workers: &mut [PowerSgd], grads: &[&[f32]]) -> (Vec<f32>, usize) {
    assert_eq!(workers.len(), grads.len(), "worker count mismatch");
    assert!(!workers.is_empty(), "need at least one worker");
    let d = workers[0].d;
    assert!(
        grads.iter().all(|g| g.len() == d),
        "gradient lengths differ"
    );
    let m = workers.len();
    let q_ref = workers[0].q.clone();
    for w in &workers[1..] {
        assert_eq!(w.q, q_ref, "workers must share the warm-start Q");
    }
    let _ = q_ref;
    // Round 1: all-reduce P̄ = mean_w (G_w + e_w)·Q̂.
    let mut p_mean = Tensor::zeros(workers[0].rows, workers[0].rank);
    for (w, g) in workers.iter().zip(grads) {
        p_mean.axpy_inplace(1.0 / m as f32, &w.project_p(g));
    }
    orthonormalize_columns(&mut p_mean);
    // Round 2: all-reduce Q̄ = mean_w G_wᵀ·P̄.
    let mut q_mean = Tensor::zeros(workers[0].cols, workers[0].rank);
    for (w, g) in workers.iter().zip(grads) {
        q_mean.axpy_inplace(1.0 / m as f32, &w.project_q(g, &p_mean));
    }
    let rec = workers[0].reconstruct(&p_mean, &q_mean);
    for (w, g) in workers.iter_mut().zip(grads) {
        w.absorb(g, &rec, &q_mean);
    }
    let bits = (p_mean.len() + q_mean.len()) * 32;
    (rec, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_tensor::stats::{dist_sq, norm_l2};

    #[test]
    fn matrix_shape_covers_d() {
        for d in [1usize, 7, 64, 1000, 12345] {
            let (r, c) = matrix_shape(d);
            assert!(r * c >= d);
            assert!(
                r * c < d + r + c,
                "shape ({r},{c}) wastes too much for d={d}"
            );
        }
    }

    #[test]
    fn orthonormalize_produces_orthonormal_columns() {
        let mut rng = FastRng::new(1, 0);
        let mut m = Tensor::gaussian(16, 4, 1.0, &mut rng);
        orthonormalize_columns(&mut m);
        for a in 0..4 {
            for b in 0..4 {
                let dot: f32 = (0..16).map(|r| m.get(r, a) * m.get(r, b)).sum();
                let expected = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-4, "({a},{b}): {dot}");
            }
        }
    }

    #[test]
    fn rank_r_matrix_reconstructs_after_warmup() {
        // A genuinely rank-2 gradient should be captured almost exactly
        // after a few power iterations.
        let d = 256;
        let (rows, cols) = matrix_shape(d);
        let mut rng = FastRng::new(2, 0);
        let u = Tensor::gaussian(rows, 2, 1.0, &mut rng);
        let v = Tensor::gaussian(cols, 2, 1.0, &mut rng);
        let low_rank = u.matmul_nt(&v);
        let grad = low_rank.as_slice()[..d].to_vec();
        let mut comp = PowerSgd::new(d, 2, 7);
        let mut approx = Vec::new();
        for _ in 0..4 {
            comp.error.fill(0.0); // isolate the factorization quality
            let factors = comp.compress(&grad);
            approx = comp.decode(&factors);
        }
        let rel = dist_sq(&approx, &grad).sqrt() / f64::from(norm_l2(&grad));
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn error_feedback_telescopes() {
        let d = 100;
        let mut rng = FastRng::new(3, 0);
        let grad: Vec<f32> = (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect();
        let mut comp = PowerSgd::new(d, 1, 5);
        let mut applied = vec![0.0f64; d];
        let rounds = 60;
        for _ in 0..rounds {
            let factors = comp.compress(&grad);
            for (a, v) in applied.iter_mut().zip(comp.decode(&factors)) {
                *a += f64::from(v);
            }
        }
        // applied + residual ≈ rounds · grad.
        for j in 0..d {
            let total = applied[j] + f64::from(comp.error()[j]);
            let target = f64::from(grad[j]) * f64::from(rounds);
            assert!(
                (total - target).abs() < 0.3 * target.abs().max(1.0),
                "coord {j}: {total} vs {target}"
            );
        }
    }

    #[test]
    fn wire_bits_are_much_smaller_than_dense() {
        let d = 10_000;
        let mut comp = PowerSgd::new(d, 2, 1);
        let grad = vec![0.1f32; d];
        let factors = comp.compress(&grad);
        assert!(
            factors.wire_bits() < 32 * d / 10,
            "{} bits",
            factors.wire_bits()
        );
        assert_eq!(factors.sequential_rounds(), 2);
    }

    #[test]
    fn distributed_aggregation_tracks_mean() {
        let d = 144;
        let m = 4;
        let mut rng = FastRng::new(8, 0);
        let grads: Vec<Vec<f32>> = (0..m)
            .map(|_| (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect())
            .collect();
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let mut workers: Vec<PowerSgd> = (0..m).map(|_| PowerSgd::new(d, 4, 9)).collect();
        // Warm up a few rounds on the same gradients so Q aligns.
        let mut approx = Vec::new();
        for _ in 0..6 {
            let (a, _) = powersgd_allreduce(&mut workers, &refs);
            approx = a;
        }
        let mut mean = vec![0.0f32; d];
        for g in &grads {
            for (a, &x) in mean.iter_mut().zip(g) {
                *a += x / m as f32;
            }
        }
        // With error feedback the cumulative approximation tracks the mean;
        // a single-round check is loose.
        let rel = dist_sq(&approx, &mean).sqrt() / f64::from(norm_l2(&mean)).max(1e-9);
        assert!(rel < 1.5, "relative error {rel}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = PowerSgd::new(64, 2, 3);
        let b = a.clone();
        let _ = a.compress(&vec![0.5; 64]);
        assert_ne!(a, b);
        a.reset(3);
        assert_eq!(a, b);
    }
}
