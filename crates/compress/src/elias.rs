//! Elias γ and δ universal codes (Elias, 1975).
//!
//! The paper compacts the growing integer payloads of MAR-extended signSGD
//! baselines with Elias coding ("We also utilize Elias coding \[31\] to compact
//! the transmission message among nodes"). γ codes a positive integer `n` as
//! `⌊log₂n⌋` zeros, then the binary of `n`; δ codes `⌊log₂n⌋+1` with γ and
//! appends the mantissa. Signed values are mapped to positives with the
//! zigzag transform.

use crate::bitstream::{BitReader, BitWriter};

/// Zigzag-maps a signed integer to an unsigned one:
/// `0, −1, 1, −2, 2, … → 0, 1, 2, 3, 4, …`.
///
/// Total over all of `i64`: the doubling shift happens in the unsigned
/// domain, where dropping the sign bit of `i64::MIN` is well-defined
/// wrapping rather than signed overflow, so `zigzag(i64::MIN) == u64::MAX`
/// in debug and release builds alike.
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the Elias-γ code of `n` to `w`.
///
/// # Panics
///
/// Panics if `n == 0` (γ codes positive integers only).
pub fn gamma_encode(n: u64, w: &mut BitWriter) {
    assert!(n > 0, "Elias gamma requires n > 0");
    let bits = 64 - n.leading_zeros(); // position of the MSB, 1-based
                                       // bits−1 zeros, then the number MSB-first. We emit MSB-first by writing
                                       // single bits so the decoder can scan for the first 1.
    for _ in 0..bits - 1 {
        w.write_bit(false);
    }
    for i in (0..bits).rev() {
        w.write_bit((n >> i) & 1 == 1);
    }
}

/// Reads one Elias-γ code; `None` on exhausted input.
pub fn gamma_decode(r: &mut BitReader<'_>) -> Option<u64> {
    let mut zeros = 0u32;
    while !r.read_bit()? {
        zeros += 1;
        if zeros > 63 {
            return None;
        }
    }
    let mut n = 1u64;
    for _ in 0..zeros {
        n = (n << 1) | r.read_bits(1)?;
    }
    Some(n)
}

/// Appends the Elias-δ code of `n` to `w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn delta_encode(n: u64, w: &mut BitWriter) {
    assert!(n > 0, "Elias delta requires n > 0");
    let bits = 64 - n.leading_zeros();
    gamma_encode(u64::from(bits), w);
    // Mantissa: the bits of n below the MSB, MSB-first.
    for i in (0..bits - 1).rev() {
        w.write_bit((n >> i) & 1 == 1);
    }
}

/// Reads one Elias-δ code; `None` on exhausted input.
pub fn delta_decode(r: &mut BitReader<'_>) -> Option<u64> {
    let bits = gamma_decode(r)?;
    if bits == 0 || bits > 64 {
        return None;
    }
    let mut n = 1u64;
    for _ in 0..bits - 1 {
        n = (n << 1) | r.read_bits(1)?;
    }
    Some(n)
}

/// Bit length of the γ code of `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn gamma_len(n: u64) -> usize {
    assert!(n > 0, "Elias gamma requires n > 0");
    let bits = (64 - n.leading_zeros()) as usize;
    2 * bits - 1
}

/// Appends the γ code of the *successor* `g + 1` to `w`, handling the one
/// value γ itself cannot represent: `g = u64::MAX`, whose successor `2⁶⁴`
/// is written as its natural 129-bit γ codeword (64 zeros, then the 65-bit
/// binary `1` followed by 64 zeros). Makes the signed codec total over
/// `i64` — `zigzag(i64::MIN) + 1` used to overflow in debug builds.
fn gamma_encode_succ(g: u64, w: &mut BitWriter) {
    if g == u64::MAX {
        for _ in 0..64 {
            w.write_bit(false);
        }
        w.write_bit(true);
        for _ in 0..64 {
            w.write_bit(false);
        }
    } else {
        gamma_encode(g + 1, w);
    }
}

/// Reads one γ codeword written by [`gamma_encode_succ`] and returns its
/// *predecessor* (the original `g`); `None` on malformed or short input.
fn gamma_decode_pred(r: &mut BitReader<'_>) -> Option<u64> {
    let mut zeros = 0u32;
    while !r.read_bit()? {
        zeros += 1;
        if zeros > 64 {
            return None;
        }
    }
    if zeros == 64 {
        // The 2⁶⁴ escape: the 64 mantissa bits must all be zero.
        for _ in 0..64 {
            if r.read_bits(1)? != 0 {
                return None;
            }
        }
        return Some(u64::MAX);
    }
    let mut n = 1u64;
    for _ in 0..zeros {
        n = (n << 1) | r.read_bits(1)?;
    }
    Some(n - 1)
}

/// Bit length [`gamma_encode_succ`] writes for `g`.
fn gamma_len_succ(g: u64) -> usize {
    if g == u64::MAX {
        129
    } else {
        gamma_len(g + 1)
    }
}

/// Encodes a slice of signed integers (zigzag + γ of `v+1`) into bytes.
///
/// Total over `i64`: values may be zero, negative, or the extremes
/// `i64::MIN`/`i64::MAX`; each is zigzagged and shifted by one so that γ
/// applies, with `i64::MIN` taking a 129-bit escape codeword.
#[must_use]
pub fn encode_signed(values: &[i64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    for &v in values {
        gamma_encode_succ(zigzag(v), &mut w);
    }
    w.finish()
}

/// Decodes `count` signed integers produced by [`encode_signed`].
///
/// Returns `None` if the buffer is malformed or too short.
#[must_use]
pub fn decode_signed(bytes: &[u8], count: usize) -> Option<Vec<i64>> {
    let mut r = BitReader::new(bytes);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(unzigzag(gamma_decode_pred(&mut r)?));
    }
    Some(out)
}

/// Exact bit length of [`encode_signed`] for `values` (before byte padding).
#[must_use]
pub fn encoded_bits_signed(values: &[i64]) -> usize {
    values.iter().map(|&v| gamma_len_succ(zigzag(v))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trip() {
        for v in [-1_000_000i64, -3, -1, 0, 1, 2, 7, 1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn gamma_known_codewords() {
        // γ(1) = "1", γ(2) = "010", γ(5) = "00101" (classic table).
        let mut w = BitWriter::new();
        gamma_encode(1, &mut w);
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        gamma_encode(2, &mut w);
        assert_eq!(w.bit_len(), 3);
        let mut w = BitWriter::new();
        gamma_encode(5, &mut w);
        assert_eq!(w.bit_len(), 5);
        assert_eq!(gamma_len(5), 5);
    }

    #[test]
    fn gamma_round_trip_many() {
        let values: Vec<u64> = (1..2000).chain([1 << 20, 1 << 40, u64::MAX >> 1]).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            gamma_encode(v, &mut w);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &v in &values {
            assert_eq!(gamma_decode(&mut r), Some(v), "value {v}");
        }
    }

    #[test]
    fn delta_round_trip_many() {
        let values: Vec<u64> = (1..500).chain([1 << 16, 1 << 32]).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            delta_encode(v, &mut w);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &v in &values {
            assert_eq!(delta_decode(&mut r), Some(v), "value {v}");
        }
    }

    #[test]
    fn delta_shorter_than_gamma_for_large_values() {
        let mut wg = BitWriter::new();
        gamma_encode(1 << 30, &mut wg);
        let mut wd = BitWriter::new();
        delta_encode(1 << 30, &mut wd);
        assert!(wd.bit_len() < wg.bit_len());
    }

    #[test]
    fn signed_round_trip() {
        let values: Vec<i64> = (-50..=50).collect();
        let bytes = encode_signed(&values);
        assert_eq!(decode_signed(&bytes, values.len()), Some(values));
    }

    #[test]
    fn encoded_bits_matches_actual() {
        let values: Vec<i64> = vec![0, 1, -1, 5, -8, 100, -1000];
        let bits = encoded_bits_signed(&values);
        let mut w = BitWriter::new();
        for &v in &values {
            gamma_encode(zigzag(v) + 1, &mut w);
        }
        assert_eq!(bits, w.bit_len());
    }

    #[test]
    fn small_magnitudes_are_cheap() {
        // Sign sums near zero (the common case for IID gradients) should
        // cost only a few bits.
        assert_eq!(encoded_bits_signed(&[0]), 1);
        assert!(encoded_bits_signed(&[1]) <= 3);
        assert!(encoded_bits_signed(&[-1]) <= 3);
    }

    #[test]
    fn truncated_buffer_returns_none() {
        let bytes = encode_signed(&[123456789, -987654321]);
        assert!(decode_signed(&bytes[..1], 2).is_none());
    }

    #[test]
    fn zigzag_extremes_round_trip() {
        // i64::MIN used to overflow the doubling shift / the +1 successor.
        for v in [i64::MIN, i64::MIN + 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
    }

    #[test]
    fn signed_round_trip_extremes() {
        let values = vec![i64::MIN, -1, 0, 1, i64::MAX, i64::MIN, 42];
        let bytes = encode_signed(&values);
        assert_eq!(decode_signed(&bytes, values.len()), Some(values.clone()));
        // The MIN escape codeword is 129 bits; accounting must agree with
        // the writer.
        let mut w = BitWriter::new();
        for &v in &values {
            gamma_encode_succ(zigzag(v), &mut w);
        }
        assert_eq!(encoded_bits_signed(&values), w.bit_len());
    }

    #[test]
    fn corrupt_min_escape_is_rejected() {
        // 64 zeros followed by a 1 and a *non-zero* mantissa is not a valid
        // codeword of the signed alphabet.
        let mut w = BitWriter::new();
        for _ in 0..64 {
            w.write_bit(false);
        }
        w.write_bit(true);
        for i in 0..64 {
            w.write_bit(i == 0);
        }
        let bytes = w.finish();
        assert_eq!(decode_signed(&bytes, 1), None);
    }
}

#[cfg(test)]
mod properties {
    //! Property tests of the zigzag transform and the signed codec over the
    //! full `i64` domain, including the extremes that used to overflow.

    use proptest::prelude::*;

    use super::*;

    /// Folds arbitrary u64s onto a value set dense in the extremes.
    fn stretch(x: u64) -> i64 {
        match x % 5 {
            0 => i64::MIN.wrapping_add((x >> 3) as i64 % 4),
            1 => i64::MAX.wrapping_sub((x >> 3) as i64 % 4),
            2 => (x >> 3) as i64 % 100,
            3 => -((x >> 3) as i64 % 100),
            _ => x as i64,
        }
    }

    proptest! {
        #[test]
        fn zigzag_round_trips(x in any::<u64>()) {
            let v = stretch(x);
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }

        #[test]
        fn unzigzag_round_trips(u in any::<u64>()) {
            prop_assert_eq!(zigzag(unzigzag(u)), u);
        }

        #[test]
        fn zigzag_preserves_magnitude_order(x in any::<u64>(), y in any::<u64>()) {
            let (a, b) = (stretch(x), stretch(y));
            // |a| < |b| ⇒ zigzag(a) < zigzag(b) + 1 (interleaving order),
            // using unsigned magnitude to stay total at i64::MIN.
            if a.unsigned_abs() < b.unsigned_abs() {
                prop_assert!(zigzag(a) < zigzag(b).saturating_add(1));
            }
        }

        #[test]
        fn signed_codec_round_trips(xs in prop::collection::vec(any::<u64>(), 0..20)) {
            let values: Vec<i64> = xs.into_iter().map(stretch).collect();
            let bytes = encode_signed(&values);
            prop_assert_eq!(decode_signed(&bytes, values.len()), Some(values.clone()));
            prop_assert_eq!(bytes.len(), encoded_bits_signed(&values).div_ceil(8));
        }
    }
}
