//! Elias γ and δ universal codes (Elias, 1975).
//!
//! The paper compacts the growing integer payloads of MAR-extended signSGD
//! baselines with Elias coding ("We also utilize Elias coding [31] to compact
//! the transmission message among nodes"). γ codes a positive integer `n` as
//! `⌊log₂n⌋` zeros, then the binary of `n`; δ codes `⌊log₂n⌋+1` with γ and
//! appends the mantissa. Signed values are mapped to positives with the
//! zigzag transform.

use crate::bitstream::{BitReader, BitWriter};

/// Zigzag-maps a signed integer to an unsigned one:
/// `0, −1, 1, −2, 2, … → 0, 1, 2, 3, 4, …`.
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the Elias-γ code of `n` to `w`.
///
/// # Panics
///
/// Panics if `n == 0` (γ codes positive integers only).
pub fn gamma_encode(n: u64, w: &mut BitWriter) {
    assert!(n > 0, "Elias gamma requires n > 0");
    let bits = 64 - n.leading_zeros(); // position of the MSB, 1-based
                                       // bits−1 zeros, then the number MSB-first. We emit MSB-first by writing
                                       // single bits so the decoder can scan for the first 1.
    for _ in 0..bits - 1 {
        w.write_bit(false);
    }
    for i in (0..bits).rev() {
        w.write_bit((n >> i) & 1 == 1);
    }
}

/// Reads one Elias-γ code; `None` on exhausted input.
pub fn gamma_decode(r: &mut BitReader<'_>) -> Option<u64> {
    let mut zeros = 0u32;
    while !r.read_bit()? {
        zeros += 1;
        if zeros > 63 {
            return None;
        }
    }
    let mut n = 1u64;
    for _ in 0..zeros {
        n = (n << 1) | r.read_bits(1)?;
    }
    Some(n)
}

/// Appends the Elias-δ code of `n` to `w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn delta_encode(n: u64, w: &mut BitWriter) {
    assert!(n > 0, "Elias delta requires n > 0");
    let bits = 64 - n.leading_zeros();
    gamma_encode(u64::from(bits), w);
    // Mantissa: the bits of n below the MSB, MSB-first.
    for i in (0..bits - 1).rev() {
        w.write_bit((n >> i) & 1 == 1);
    }
}

/// Reads one Elias-δ code; `None` on exhausted input.
pub fn delta_decode(r: &mut BitReader<'_>) -> Option<u64> {
    let bits = gamma_decode(r)?;
    if bits == 0 || bits > 64 {
        return None;
    }
    let mut n = 1u64;
    for _ in 0..bits - 1 {
        n = (n << 1) | r.read_bits(1)?;
    }
    Some(n)
}

/// Bit length of the γ code of `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn gamma_len(n: u64) -> usize {
    assert!(n > 0, "Elias gamma requires n > 0");
    let bits = (64 - n.leading_zeros()) as usize;
    2 * bits - 1
}

/// Encodes a slice of signed integers (zigzag + γ of `v+1`) into bytes.
///
/// Values may be zero or negative; each is zigzagged and shifted by one so
/// that γ applies.
#[must_use]
pub fn encode_signed(values: &[i64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    for &v in values {
        gamma_encode(zigzag(v) + 1, &mut w);
    }
    w.finish()
}

/// Decodes `count` signed integers produced by [`encode_signed`].
///
/// Returns `None` if the buffer is malformed or too short.
#[must_use]
pub fn decode_signed(bytes: &[u8], count: usize) -> Option<Vec<i64>> {
    let mut r = BitReader::new(bytes);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let g = gamma_decode(&mut r)?;
        out.push(unzigzag(g - 1));
    }
    Some(out)
}

/// Exact bit length of [`encode_signed`] for `values` (before byte padding).
#[must_use]
pub fn encoded_bits_signed(values: &[i64]) -> usize {
    values.iter().map(|&v| gamma_len(zigzag(v) + 1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trip() {
        for v in [-1_000_000i64, -3, -1, 0, 1, 2, 7, 1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn gamma_known_codewords() {
        // γ(1) = "1", γ(2) = "010", γ(5) = "00101" (classic table).
        let mut w = BitWriter::new();
        gamma_encode(1, &mut w);
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        gamma_encode(2, &mut w);
        assert_eq!(w.bit_len(), 3);
        let mut w = BitWriter::new();
        gamma_encode(5, &mut w);
        assert_eq!(w.bit_len(), 5);
        assert_eq!(gamma_len(5), 5);
    }

    #[test]
    fn gamma_round_trip_many() {
        let values: Vec<u64> = (1..2000).chain([1 << 20, 1 << 40, u64::MAX >> 1]).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            gamma_encode(v, &mut w);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &v in &values {
            assert_eq!(gamma_decode(&mut r), Some(v), "value {v}");
        }
    }

    #[test]
    fn delta_round_trip_many() {
        let values: Vec<u64> = (1..500).chain([1 << 16, 1 << 32]).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            delta_encode(v, &mut w);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &v in &values {
            assert_eq!(delta_decode(&mut r), Some(v), "value {v}");
        }
    }

    #[test]
    fn delta_shorter_than_gamma_for_large_values() {
        let mut wg = BitWriter::new();
        gamma_encode(1 << 30, &mut wg);
        let mut wd = BitWriter::new();
        delta_encode(1 << 30, &mut wd);
        assert!(wd.bit_len() < wg.bit_len());
    }

    #[test]
    fn signed_round_trip() {
        let values: Vec<i64> = (-50..=50).collect();
        let bytes = encode_signed(&values);
        assert_eq!(decode_signed(&bytes, values.len()), Some(values));
    }

    #[test]
    fn encoded_bits_matches_actual() {
        let values: Vec<i64> = vec![0, 1, -1, 5, -8, 100, -1000];
        let bits = encoded_bits_signed(&values);
        let mut w = BitWriter::new();
        for &v in &values {
            gamma_encode(zigzag(v) + 1, &mut w);
        }
        assert_eq!(bits, w.bit_len());
    }

    #[test]
    fn small_magnitudes_are_cheap() {
        // Sign sums near zero (the common case for IID gradients) should
        // cost only a few bits.
        assert_eq!(encoded_bits_signed(&[0]), 1);
        assert!(encoded_bits_signed(&[1]) <= 3);
        assert!(encoded_bits_signed(&[-1]) <= 3);
    }

    #[test]
    fn truncated_buffer_returns_none() {
        let bytes = encode_signed(&[123456789, -987654321]);
        assert!(decode_signed(&bytes[..1], 2).is_none());
    }
}
