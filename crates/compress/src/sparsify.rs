//! Top-K sparsification (related work: Wangni et al., Guo et al. "Tail").
//!
//! Keeps the `k` largest-magnitude coordinates with error feedback for the
//! rest. The interesting property for this paper is *why sparsification
//! fits MAR poorly*: summing two sparse messages unions their supports, so
//! the payload grows along the reduction chain unless it is re-truncated at
//! every hop — re-truncation being exactly the cascading-compression error
//! pattern Marsit avoids. [`support_union_growth`] measures that growth.

use marsit_tensor::rng::FastRng;

/// A sparse gradient message: sorted `(index, value)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMessage {
    dim: usize,
    entries: Vec<(u32, f32)>,
}

impl SparseMessage {
    /// Creates a message over a `dim`-dimensional gradient.
    ///
    /// # Panics
    ///
    /// Panics if entries are unsorted, duplicated, or out of range.
    #[must_use]
    pub fn new(dim: usize, entries: Vec<(u32, f32)>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly sorted by index"
        );
        assert!(
            entries.last().is_none_or(|&(i, _)| (i as usize) < dim),
            "index out of range"
        );
        Self { dim, entries }
    }

    /// Gradient dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The retained entries.
    #[must_use]
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Number of retained coordinates.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Densifies to a full vector.
    #[must_use]
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// Wire size: each entry carries a `⌈log₂ D⌉`-bit index and a 32-bit
    /// value.
    #[must_use]
    pub fn wire_bits(&self) -> usize {
        let idx = (64 - (self.dim.max(2) as u64 - 1).leading_zeros()) as usize;
        self.entries.len() * (idx + 32)
    }

    /// Sums two sparse messages (support union).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn merge(&self, other: &SparseMessage) -> SparseMessage {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.entries.len() || b < other.entries.len() {
            match (self.entries.get(a), other.entries.get(b)) {
                (Some(&(ia, va)), Some(&(ib, vb))) => {
                    if ia == ib {
                        out.push((ia, va + vb));
                        a += 1;
                        b += 1;
                    } else if ia < ib {
                        out.push((ia, va));
                        a += 1;
                    } else {
                        out.push((ib, vb));
                        b += 1;
                    }
                }
                (Some(&e), None) => {
                    out.push(e);
                    a += 1;
                }
                (None, Some(&e)) => {
                    out.push(e);
                    b += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        SparseMessage {
            dim: self.dim,
            entries: out,
        }
    }
}

/// Top-K compressor with error-feedback memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopK {
    k: usize,
    error: Vec<f32>,
}

impl TopK {
    /// Creates a compressor retaining `k` coordinates per round.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            error: Vec::new(),
        }
    }

    /// The retention count `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current residual memory.
    #[must_use]
    pub fn error(&self) -> &[f32] {
        &self.error
    }

    /// Compresses `grad + error`, keeping the `k` largest-magnitude
    /// coordinates and folding the rest back into the memory.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length changes across calls.
    pub fn compress(&mut self, grad: &[f32]) -> SparseMessage {
        if self.error.is_empty() {
            self.error = vec![0.0; grad.len()];
        }
        assert_eq!(self.error.len(), grad.len(), "gradient length changed");
        let p: Vec<f32> = grad.iter().zip(&self.error).map(|(&g, &e)| g + e).collect();
        let k = self.k.min(p.len());
        // Select the k largest magnitudes.
        let mut order: Vec<u32> = (0..p.len() as u32).collect();
        order.select_nth_unstable_by(k.saturating_sub(1), |&a, &b| {
            p[b as usize]
                .abs()
                .partial_cmp(&p[a as usize].abs())
                .expect("magnitudes are finite")
        });
        let mut keep: Vec<u32> = order[..k].to_vec();
        keep.sort_unstable();
        let entries: Vec<(u32, f32)> = keep.iter().map(|&i| (i, p[i as usize])).collect();
        // Residual: everything not transmitted.
        self.error.copy_from_slice(&p);
        for &(i, _) in &entries {
            self.error[i as usize] = 0.0;
        }
        SparseMessage::new(grad.len(), entries)
    }

    /// Resets the memory.
    pub fn reset(&mut self) {
        self.error.clear();
    }
}

/// Measures how the support (nonzero count) of a sparse aggregate grows as
/// `m` random Top-K messages are merged along a chain — the reason the
/// paper's related work dismisses sparsification under MAR.
///
/// Returns `nnz` after each merge (length `m`).
///
/// # Panics
///
/// Panics if `k == 0` or `k > d`.
#[must_use]
pub fn support_union_growth(d: usize, k: usize, m: usize, seed: u64) -> Vec<usize> {
    assert!(k > 0 && k <= d, "invalid k");
    let mut rng = FastRng::new(seed, 0);
    let mut make = |stream: u64| -> SparseMessage {
        let _ = stream;
        let mut indices = std::collections::BTreeSet::new();
        while indices.len() < k {
            indices.insert(rng.next_range(d as u64) as u32);
        }
        SparseMessage::new(d, indices.into_iter().map(|i| (i, 1.0)).collect())
    };
    let mut agg = make(0);
    let mut out = vec![agg.nnz()];
    for w in 1..m {
        agg = agg.merge(&make(w as u64));
        out.push(agg.nnz());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_largest_magnitudes() {
        let mut c = TopK::new(2);
        let msg = c.compress(&[0.1, -5.0, 0.2, 3.0]);
        assert_eq!(msg.nnz(), 2);
        let dense = msg.to_dense();
        assert_eq!(dense, vec![0.0, -5.0, 0.0, 3.0]);
        // Residual holds the rest.
        assert_eq!(c.error(), &[0.1, 0.0, 0.2, 0.0]);
    }

    #[test]
    fn topk_error_feedback_telescopes() {
        let mut c = TopK::new(1);
        let g = [1.0f32, 0.9, 0.8];
        let mut applied = [0.0f32; 3];
        for _ in 0..30 {
            let msg = c.compress(&g);
            for (a, v) in applied.iter_mut().zip(msg.to_dense()) {
                *a += v;
            }
        }
        // Each coordinate's cumulative applied + residual = cumulative g.
        for j in 0..3 {
            let total = applied[j] + c.error()[j];
            assert!((total - 30.0 * g[j]).abs() < 1e-4, "coord {j}");
        }
    }

    #[test]
    fn merge_unions_supports() {
        let a = SparseMessage::new(8, vec![(0, 1.0), (3, 2.0)]);
        let b = SparseMessage::new(8, vec![(3, 1.0), (5, -1.0)]);
        let m = a.merge(&b);
        assert_eq!(m.entries(), &[(0, 1.0), (3, 3.0), (5, -1.0)]);
    }

    #[test]
    fn support_growth_approaches_dense() {
        // k = 5% of D, 16 workers: the union covers most of the space,
        // destroying the sparsity advantage — the MAR incompatibility.
        let d = 1000;
        let k = 50;
        let growth = support_union_growth(d, k, 16, 3);
        assert_eq!(growth[0], k);
        let last = *growth.last().expect("non-empty");
        assert!(
            last > 8 * k / 2,
            "support must grow substantially: {growth:?}"
        );
        assert!(growth.windows(2).all(|w| w[1] >= w[0]), "monotone growth");
        // Wire size grows proportionally.
        let first_bits =
            SparseMessage::new(d, (0..k as u32).map(|i| (i, 1.0)).collect()).wire_bits();
        let last_bits = first_bits * last / k;
        assert!(last_bits > 6 * first_bits);
    }

    #[test]
    fn wire_bits_counts_indices_and_values() {
        let msg = SparseMessage::new(1024, vec![(1, 1.0), (2, 2.0)]);
        // 10-bit indices + 32-bit values.
        assert_eq!(msg.wire_bits(), 2 * (10 + 32));
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_entries_panic() {
        let _ = SparseMessage::new(4, vec![(2, 1.0), (1, 1.0)]);
    }
}
