//! Gradient compression for the Marsit reproduction.
//!
//! Implements every compression baseline the paper compares against, plus
//! the variable-width wire formats their MAR extensions need:
//!
//! - [`compressor`]: worker-side compressors — [`PlainSign`] (signSGD),
//!   [`EfSign`] (EF-signSGD with error feedback), [`Ssdm`] (unbiased
//!   stochastic sign);
//! - [`cascading`]: the cascading-compression pipeline of Section 3.2, whose
//!   compounding error motivates Marsit (Theorem 3);
//! - [`sums`]: integer sign-sum payloads with the `⌈log₂ M⌉` bit growth of
//!   Section 3.1, in fixed-width and Elias-coded forms;
//! - [`elias`] / [`bitstream`]: Elias γ/δ universal codes over an LSB-first
//!   bit stream (the paper's payload compaction);
//! - [`message`]: the `(signs, scale)` wire message shared by the sign
//!   family;
//! - [`quantizers`]: the related-work multi-level quantizers TernGrad and
//!   QSGD (unbiased, but more than one bit per coordinate);
//! - [`powersgd`]: low-rank PowerSGD with error feedback — linear and
//!   MAR-compatible, but needing two sequential all-reduce passes per
//!   round (the related-work inefficiency the paper notes);
//! - [`sparsify`]: Top-K sparsification with error feedback, plus the
//!   support-union growth measurement explaining why sparsity fits MAR
//!   poorly.
//!
//! # Examples
//!
//! Unbiased stochastic sign compression (SSDM), decoded to `‖v‖·σ`:
//!
//! ```
//! use marsit_compress::{Compressor, Ssdm};
//! use marsit_tensor::rng::FastRng;
//!
//! let mut rng = FastRng::new(0, 0);
//! let grad = [0.5f32, -2.0, 1.0];
//! let msg = Ssdm::new().compress(&grad, &mut rng);
//! assert_eq!(msg.wire_bits(), 3 + 32); // one bit per coordinate + scale
//! ```

pub mod bitstream;
pub mod cascading;
pub mod compressor;
pub mod elias;
pub mod message;
pub mod powersgd;
pub mod quantizers;
pub mod sparsify;
pub mod sums;

pub use cascading::{
    cascade_reduce, cascade_reduce_deterministic, cascade_reduce_practical, exact_sum,
    CascadeOutcome,
};
pub use compressor::{Compressor, EfSign, PlainSign, Ssdm};
pub use message::SignMessage;
pub use powersgd::{PowerFactors, PowerSgd};
pub use quantizers::QuantizedMessage;
pub use sparsify::{SparseMessage, TopK};
pub use sums::SignSumVec;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::elias;
    use crate::sums::SignSumVec;
    use marsit_tensor::SignVec;

    proptest! {
        /// Elias γ round-trips for arbitrary signed values.
        #[test]
        fn elias_signed_round_trip(values in prop::collection::vec(-10_000i64..10_000, 0..200)) {
            let bytes = elias::encode_signed(&values);
            prop_assert_eq!(elias::decode_signed(&bytes, values.len()), Some(values));
        }

        /// Sign-sum merging is order-independent and majority vote matches a
        /// scalar recount.
        #[test]
        fn sign_sum_merge_commutes(bits in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 16..17), 1..8)) {
            let vecs: Vec<SignVec> = bits.iter().map(|b| b.iter().copied().collect()).collect();
            let mut forward = SignSumVec::zeros(16);
            for v in &vecs {
                forward.add_signs(v);
            }
            let mut backward = SignSumVec::zeros(16);
            for v in vecs.iter().rev() {
                backward.add_signs(v);
            }
            prop_assert_eq!(&forward, &backward);
            // Majority recount.
            for j in 0..16 {
                let ones = bits.iter().filter(|b| b[j]).count() as i32;
                let sum = 2 * ones - bits.len() as i32;
                prop_assert_eq!(forward.majority_sign().get(j), sum >= 0);
            }
        }

        /// Elias-coded sign sums round-trip.
        #[test]
        fn sign_sum_elias_round_trip(rounds in 1usize..6, seed in any::<u64>()) {
            use marsit_tensor::rng::FastRng;
            let mut rng = FastRng::new(seed, 0);
            let mut sum = SignSumVec::zeros(64);
            for _ in 0..rounds {
                sum.add_signs(&SignVec::bernoulli_uniform(64, 0.5, &mut rng));
            }
            let bytes = sum.encode_elias();
            let back = SignSumVec::decode_elias(&bytes, 64, rounds as u32);
            prop_assert_eq!(back, Some(sum));
        }
    }
}
