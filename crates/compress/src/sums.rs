//! Integer sign-sum vectors: the growing payload of MAR-extended signSGD.
//!
//! Under a parameter server, signSGD-family methods transmit one bit per
//! coordinate because the server receives each worker's signs separately.
//! Under multi-hop all-reduce the only linear aggregate is the *sum of
//! signs*, whose per-coordinate range grows with the number of workers
//! folded in — the "bit length expansion" of the paper's Section 3.1, upper
//! bounded by `⌈log₂ M⌉` extra bits. [`SignSumVec`] implements that payload
//! exactly, with both fixed-width and Elias-coded wire sizes.

use marsit_tensor::SignVec;

use crate::elias;

/// A vector of per-coordinate sign sums `Σ_m σ_m ∈ [−count, count]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignSumVec {
    sums: Vec<i32>,
    /// Number of ±1 terms folded into each coordinate.
    count: u32,
}

impl SignSumVec {
    /// Starts a sum from a single worker's sign vector.
    #[must_use]
    pub fn from_signs(signs: &SignVec) -> Self {
        Self {
            sums: signs.iter().map(|b| if b { 1 } else { -1 }).collect(),
            count: 1,
        }
    }

    /// An all-zero sum over `len` coordinates with no terms folded in.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            sums: vec![0; len],
            count: 0,
        }
    }

    /// Reassembles a sum vector from raw sums and a term count (used when a
    /// collective stitches together per-segment results).
    ///
    /// # Panics
    ///
    /// Panics if any sum exceeds `count` in magnitude.
    #[must_use]
    pub fn from_parts(sums: Vec<i32>, count: u32) -> Self {
        assert!(
            sums.iter().all(|s| s.unsigned_abs() <= count),
            "sum magnitude exceeds term count"
        );
        Self { sums, count }
    }

    /// Number of coordinates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Whether the vector has zero coordinates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Number of ±1 terms folded into each coordinate.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The raw sums.
    #[must_use]
    pub fn sums(&self) -> &[i32] {
        &self.sums
    }

    /// Folds another worker's signs into the sum.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add_signs(&mut self, signs: &SignVec) {
        assert_eq!(self.sums.len(), signs.len(), "length mismatch");
        for (s, b) in self.sums.iter_mut().zip(signs.iter()) {
            *s += if b { 1 } else { -1 };
        }
        self.count += 1;
    }

    /// Merges another partial sum into this one.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn merge(&mut self, other: &SignSumVec) {
        assert_eq!(self.sums.len(), other.sums.len(), "length mismatch");
        for (s, &o) in self.sums.iter_mut().zip(&other.sums) {
            *s += o;
        }
        self.count += other.count;
    }

    /// Majority vote: the sign of each sum (ties vote `+1`, matching the
    /// `sgn(0) = +1` convention of [`SignVec::from_signs`]).
    #[must_use]
    pub fn majority_sign(&self) -> SignVec {
        self.sums.iter().map(|&s| s >= 0).collect()
    }

    /// Mean of the folded signs per coordinate, in `[−1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if no terms have been folded in.
    #[must_use]
    pub fn mean_signs(&self) -> Vec<f32> {
        assert!(self.count > 0, "mean of empty sign sum");
        let inv = 1.0 / self.count as f32;
        self.sums.iter().map(|&s| s as f32 * inv).collect()
    }

    /// Fixed-width wire size in bits: each coordinate needs
    /// `⌈log₂(2·count + 1)⌉` bits to cover `[−count, count]`.
    #[must_use]
    pub fn fixed_width_bits(&self) -> usize {
        self.len() * Self::bits_per_coord(self.count)
    }

    /// Bits per coordinate of a fixed-width encoding after folding `count`
    /// workers: `⌈log₂(2·count + 1)⌉` (1 bit for a single worker).
    #[must_use]
    pub fn bits_per_coord(count: u32) -> usize {
        if count <= 1 {
            return 1;
        }
        let states = 2 * u64::from(count) + 1;
        (64 - (states - 1).leading_zeros()) as usize
    }

    /// Exact Elias-γ coded wire size in bits (what the paper's baselines use
    /// to compact the growing payload).
    #[must_use]
    pub fn elias_bits(&self) -> usize {
        elias::encoded_bits_signed(&self.iter_i64().collect::<Vec<_>>())
    }

    /// Serializes with Elias-γ; round-trips through
    /// [`SignSumVec::decode_elias`].
    #[must_use]
    pub fn encode_elias(&self) -> Vec<u8> {
        elias::encode_signed(&self.iter_i64().collect::<Vec<_>>())
    }

    /// Decodes an Elias-γ payload of `len` coordinates with `count` folded
    /// terms. Returns `None` on malformed input.
    #[must_use]
    pub fn decode_elias(bytes: &[u8], len: usize, count: u32) -> Option<Self> {
        let sums = elias::decode_signed(bytes, len)?;
        let sums: Vec<i32> = sums.into_iter().map(|v| v as i32).collect();
        if sums.iter().any(|&s| s.unsigned_abs() > count) {
            return None;
        }
        Some(Self { sums, count })
    }

    fn iter_i64(&self) -> impl Iterator<Item = i64> + '_ {
        self.sums.iter().map(|&s| i64::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(bits: &[bool]) -> SignVec {
        bits.iter().copied().collect()
    }

    #[test]
    fn from_signs_and_add() {
        let mut sum = SignSumVec::from_signs(&sv(&[true, false, true]));
        sum.add_signs(&sv(&[true, true, false]));
        assert_eq!(sum.sums(), &[2, 0, 0]);
        assert_eq!(sum.count(), 2);
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = SignSumVec::from_signs(&sv(&[true, true]));
        let mut b = SignSumVec::from_signs(&sv(&[false, true]));
        b.merge(&a);
        assert_eq!(b.sums(), &[0, 2]);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn majority_ties_are_positive() {
        let mut sum = SignSumVec::from_signs(&sv(&[true, false]));
        sum.add_signs(&sv(&[false, true]));
        let vote = sum.majority_sign();
        assert!(vote.get(0));
        assert!(vote.get(1));
    }

    #[test]
    fn mean_signs_range() {
        let mut sum = SignSumVec::from_signs(&sv(&[true, false, true]));
        sum.add_signs(&sv(&[true, false, false]));
        assert_eq!(sum.mean_signs(), vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn bits_per_coord_growth() {
        // 1 worker: 1 bit. 2 workers: range [−2,2] = 5 states -> 3 bits.
        // 8 workers: 17 states -> 5 bits. Matches ⌈log2⌉ growth bounded by
        // ⌈log2 M⌉ + 1 extra bits.
        assert_eq!(SignSumVec::bits_per_coord(1), 1);
        assert_eq!(SignSumVec::bits_per_coord(2), 3);
        assert_eq!(SignSumVec::bits_per_coord(3), 3);
        assert_eq!(SignSumVec::bits_per_coord(4), 4);
        assert_eq!(SignSumVec::bits_per_coord(8), 5);
        assert_eq!(SignSumVec::bits_per_coord(32), 7);
    }

    #[test]
    fn elias_round_trip() {
        let mut sum = SignSumVec::from_signs(&sv(&[true, false, true, true]));
        sum.add_signs(&sv(&[true, false, false, true]));
        sum.add_signs(&sv(&[false, false, true, true]));
        let bytes = sum.encode_elias();
        let back = SignSumVec::decode_elias(&bytes, 4, 3).expect("decodes");
        assert_eq!(back, sum);
    }

    #[test]
    fn decode_rejects_out_of_range() {
        let sum = SignSumVec::from_signs(&sv(&[true; 4]));
        let mut merged = sum.clone();
        merged.merge(&sum);
        merged.merge(&sum); // sums of +3, count 3
        let bytes = merged.encode_elias();
        assert!(SignSumVec::decode_elias(&bytes, 4, 2).is_none());
    }

    #[test]
    fn elias_beats_fixed_width_for_balanced_sums() {
        // IID signs concentrate near zero, where γ codes are short.
        use marsit_tensor::rng::FastRng;
        let mut rng = FastRng::new(3, 0);
        let mut sum = SignSumVec::zeros(10_000);
        for s in 0..16 {
            sum.merge(&SignSumVec::from_signs(&SignVec::bernoulli_uniform(
                10_000,
                0.5,
                &mut FastRng::new(s, 1),
            )));
        }
        let _ = &mut rng;
        assert!(sum.elias_bits() < sum.fixed_width_bits() * 2);
        assert!(sum.elias_bits() > sum.len()); // still more than 1 bit/coord
    }
}
