//! The scaled-sign wire message shared by all signSGD-family compressors.

use marsit_tensor::SignVec;

/// A compressed gradient: one sign bit per coordinate plus one scalar scale.
///
/// Decoding yields `scale · σ_j` per coordinate. Plain signSGD uses
/// `scale = 1`; EF-signSGD uses `‖p‖₁/D`; SSDM uses `‖v‖₂` (the unbiased
/// decode of the paper's appendix, `Q(v) = ‖v‖·s̃ign(v)`).
///
/// # Examples
///
/// ```
/// use marsit_compress::SignMessage;
/// use marsit_tensor::SignVec;
///
/// let msg = SignMessage::new(SignVec::from_signs(&[2.0, -3.0]), 0.5);
/// let mut out = [0.0f32; 2];
/// msg.decompress_into(&mut out);
/// assert_eq!(out, [0.5, -0.5]);
/// assert_eq!(msg.wire_bits(), 2 + 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SignMessage {
    signs: SignVec,
    scale: f32,
}

impl SignMessage {
    /// Creates a message from packed signs and a scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    #[must_use]
    pub fn new(signs: SignVec, scale: f32) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "scale must be finite and non-negative"
        );
        Self { signs, scale }
    }

    /// The packed sign bits.
    #[must_use]
    pub fn signs(&self) -> &SignVec {
        &self.signs
    }

    /// The scalar scale.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of coordinates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// Whether the message covers zero coordinates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// Writes the decoded values `scale · σ_j` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn decompress_into(&self, out: &mut [f32]) {
        self.signs.write_scaled_signs(self.scale, out);
    }

    /// Decoded values as a fresh vector.
    #[must_use]
    pub fn to_values(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len()];
        self.decompress_into(&mut out);
        out
    }

    /// Exact wire size: one bit per coordinate plus a 32-bit scale.
    #[must_use]
    pub fn wire_bits(&self) -> usize {
        self.signs.len() + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_scales_signs() {
        let msg = SignMessage::new(SignVec::from_signs(&[1.0, -1.0, 5.0]), 2.0);
        assert_eq!(msg.to_values(), vec![2.0, -2.0, 2.0]);
    }

    #[test]
    fn zero_scale_decodes_to_zero() {
        let msg = SignMessage::new(SignVec::from_signs(&[1.0, -1.0]), 0.0);
        assert_eq!(msg.to_values(), vec![0.0, -0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_scale_panics() {
        let _ = SignMessage::new(SignVec::zeros(1), -1.0);
    }
}
