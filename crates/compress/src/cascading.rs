//! Cascading compression: the naive one-bit MAR pipeline the paper rejects.
//!
//! To keep every hop at one bit per coordinate, each worker along the ring
//! must *receive* a compressed message, *recover* it to full precision,
//! *aggregate* its own gradient, and *re-compress* before sending — the
//! five-step "receive / recover / aggregate / compress / send" sequence of
//! Section 3.2. Every re-compression injects a fresh error whose scale is
//! the ℓ2-norm of the running aggregate, so the error compounds along the
//! chain (Theorem 3: deviation `O((2D)^M G²/M)` versus `O(DG²)` under PS).
//!
//! This module implements the chain exactly so the motivation experiments
//! (Table 1, Fig 1) can reproduce the divergence.

use marsit_tensor::rng::FastRng;

use crate::compressor::Ssdm;
use crate::message::SignMessage;

/// Outcome of one cascading-compression reduction over a worker chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeOutcome {
    /// Final decoded aggregate (the *sum* over workers; divide by `M` for
    /// the mean — the paper's `s₃` is this divided by `M`).
    pub aggregate: Vec<f32>,
    /// The final compressed message as broadcast in the gather phase.
    pub final_message: SignMessage,
    /// Number of compression operations performed (= chain length).
    pub compressions: usize,
}

/// Runs SSDM cascading compression along a chain of worker gradients.
///
/// Worker 0 compresses its gradient; each subsequent worker recovers the
/// incoming message, adds its own gradient, and re-compresses. The returned
/// aggregate is the decode of the *final* message, which is what every
/// worker ends up applying after the gather phase.
///
/// # Panics
///
/// Panics if `gradients` is empty or lengths are inconsistent.
#[must_use]
pub fn cascade_reduce(gradients: &[&[f32]], rng: &mut FastRng) -> CascadeOutcome {
    assert!(!gradients.is_empty(), "cascade over empty worker set");
    let d = gradients[0].len();
    assert!(
        gradients.iter().all(|g| g.len() == d),
        "inconsistent gradient lengths"
    );
    // Worker 0: compress own gradient.
    let mut message = Ssdm::quantize(gradients[0], rng);
    let mut compressions = 1;
    let mut recovered = vec![0.0f32; d];
    // Workers 1..M: recover, aggregate, re-compress.
    for grad in &gradients[1..] {
        message.decompress_into(&mut recovered);
        for (r, &g) in recovered.iter_mut().zip(*grad) {
            *r += g;
        }
        message = Ssdm::quantize(&recovered, rng);
        compressions += 1;
    }
    let aggregate = message.to_values();
    CascadeOutcome {
        aggregate,
        final_message: message,
        compressions,
    }
}

/// The *deployable* cascading relay: stochastic SSDM signs at every hop,
/// but the decode uses the RMS magnitude (`‖w‖/√D` per coordinate) instead
/// of the appendix's full `‖w‖`, keeping scales bounded so long chains
/// neither overflow nor blow the model up. The stochastic relay still
/// destroys nearly all per-coordinate signal (tilt ≈ 1/(2√D) per hop) —
/// the practical face of Section 3.2's failure mode: the transmitted sign
/// is "more likely biased to the received one" and the matching rate
/// collapses toward a coin flip.
///
/// # Panics
///
/// Panics if `gradients` is empty or lengths are inconsistent.
#[must_use]
pub fn cascade_reduce_practical(gradients: &[&[f32]], rng: &mut FastRng) -> CascadeOutcome {
    assert!(!gradients.is_empty(), "cascade over empty worker set");
    let d = gradients[0].len();
    assert!(
        gradients.iter().all(|g| g.len() == d),
        "inconsistent gradient lengths"
    );
    let rms_rescale = |m: SignMessage| -> SignMessage {
        let rms = f64::from(m.scale()) / (d as f64).sqrt();
        SignMessage::new(m.signs().clone(), rms as f32)
    };
    let mut message = rms_rescale(Ssdm::quantize(gradients[0], rng));
    let mut compressions = 1;
    let mut recovered = vec![0.0f32; d];
    for grad in &gradients[1..] {
        message.decompress_into(&mut recovered);
        for (r, &g) in recovered.iter_mut().zip(*grad) {
            *r += g;
        }
        message = rms_rescale(Ssdm::quantize(&recovered, rng));
        compressions += 1;
    }
    let aggregate = message.to_values();
    CascadeOutcome {
        aggregate,
        final_message: message,
        compressions,
    }
}

/// A *deterministic* relay variant: each hop recovers at RMS magnitude and
/// re-compresses with the plain sign of the aggregate (no stochastic
/// rounding). Interestingly this repairs much of the cascade when worker
/// gradients are strongly correlated — the received majority survives each
/// deterministic hop — which is precisely the information the stochastic
/// relay randomizes away. Kept as an ablation; see `EXPERIMENTS.md`.
///
/// # Panics
///
/// Panics if `gradients` is empty or lengths are inconsistent.
#[must_use]
pub fn cascade_reduce_deterministic(gradients: &[&[f32]]) -> CascadeOutcome {
    use marsit_tensor::stats::norm_l2_sq;
    use marsit_tensor::SignVec;

    assert!(!gradients.is_empty(), "cascade over empty worker set");
    let d = gradients[0].len();
    assert!(
        gradients.iter().all(|g| g.len() == d),
        "inconsistent gradient lengths"
    );
    let rms = |v: &[f32]| (norm_l2_sq(v) / d as f64).sqrt() as f32;
    let mut message = SignMessage::new(SignVec::from_signs(gradients[0]), rms(gradients[0]));
    let mut compressions = 1;
    let mut recovered = vec![0.0f32; d];
    for grad in &gradients[1..] {
        message.decompress_into(&mut recovered);
        for (r, &g) in recovered.iter_mut().zip(*grad) {
            *r += g;
        }
        message = SignMessage::new(SignVec::from_signs(&recovered), rms(&recovered));
        compressions += 1;
    }
    let aggregate = message.to_values();
    CascadeOutcome {
        aggregate,
        final_message: message,
        compressions,
    }
}

/// Expectation-preserving reference: the true sum of the gradients
/// (`M · s₁` in the paper's notation).
///
/// # Panics
///
/// Panics if `gradients` is empty or lengths are inconsistent.
#[must_use]
pub fn exact_sum(gradients: &[&[f32]]) -> Vec<f32> {
    assert!(!gradients.is_empty(), "sum over empty worker set");
    let d = gradients[0].len();
    let mut out = vec![0.0f32; d];
    for g in gradients {
        assert_eq!(g.len(), d, "inconsistent gradient lengths");
        for (o, &x) in out.iter_mut().zip(*g) {
            *o += x;
        }
    }
    out
}

/// Streaming codec passes per *hop* of the cascade (recover + aggregate +
/// ℓ2 norm + pack), used by the compression-time model. Unlike Marsit, these
/// passes cannot overlap the receive because the recompression depends on
/// the received payload.
pub const CODEC_PASSES_PER_HOP: f64 = 4.0;

/// RNG passes per hop (the stochastic re-quantization).
pub const RNG_PASSES_PER_HOP: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;
    use marsit_tensor::stats::dist_sq;
    use marsit_tensor::Tensor;

    fn random_gradients(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        (0..m)
            .map(|w| {
                let mut rng = FastRng::new(seed, w as u64);
                Tensor::gaussian(1, d, 1.0, &mut rng).into_vec()
            })
            .collect()
    }

    #[test]
    fn single_worker_chain_is_plain_ssdm() {
        let g = [1.0f32, -2.0, 3.0];
        let mut rng = FastRng::new(0, 0);
        let out = cascade_reduce(&[&g], &mut rng);
        assert_eq!(out.compressions, 1);
        assert_eq!(out.aggregate.len(), 3);
        // Scale must be ‖g‖₂.
        let norm = (1.0f32 + 4.0 + 9.0).sqrt();
        assert!((out.final_message.scale() - norm).abs() < 1e-6);
    }

    #[test]
    fn cascade_is_unbiased_in_expectation() {
        // E[cascade] = exact sum: check on a small chain with many trials.
        let grads = random_gradients(3, 16, 5);
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let truth = exact_sum(&refs);
        let trials = 20_000;
        let mut acc = vec![marsit_tensor::stats::Accumulator::new(); 16];
        let mut rng = FastRng::new(77, 0);
        for _ in 0..trials {
            let out = cascade_reduce(&refs, &mut rng);
            for (a, v) in acc.iter_mut().zip(&out.aggregate) {
                a.push(f64::from(*v));
            }
        }
        // The cascade's per-coordinate variance is enormous (the last scale
        // is ~(√D)^{M−1}·‖g‖), so compare against the empirical standard
        // error of the mean with a 5σ band.
        for (j, (&t, a)) in truth.iter().zip(&acc).enumerate() {
            let sem = a.sample_std() / f64::from(trials as u32).sqrt();
            assert!(
                (f64::from(t) - a.mean()).abs() < 5.0 * sem + 1e-6,
                "coord {j}: mean {} vs truth {t} (sem {sem})",
                a.mean()
            );
        }
    }

    #[test]
    fn cascade_deviation_explodes_with_chain_length() {
        // Theorem 3's qualitative content: per-worker deviation of the
        // cascade grows much faster with M than the PS deviation.
        let d = 64;
        let trials = 200;
        let mut dev = Vec::new();
        for m in [2usize, 4, 8] {
            let grads = random_gradients(m, d, 9);
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let truth = exact_sum(&refs);
            let mut rng = FastRng::new(13, m as u64);
            let mut total = 0.0;
            for _ in 0..trials {
                let out = cascade_reduce(&refs, &mut rng);
                // Normalize by M (paper compares s₃ = aggregate/M to s₁).
                let s3: Vec<f32> = out.aggregate.iter().map(|&x| x / m as f32).collect();
                let s1: Vec<f32> = truth.iter().map(|&x| x / m as f32).collect();
                total += dist_sq(&s3, &s1);
            }
            dev.push(total / f64::from(trials as u32));
        }
        assert!(dev[1] > 1.5 * dev[0], "deviation should grow: {dev:?}");
        assert!(
            dev[2] > 1.5 * dev[1],
            "deviation should keep growing: {dev:?}"
        );
    }

    #[test]
    fn practical_cascade_scales_stay_bounded() {
        // The RMS decode keeps the running scale near the data scale even
        // for long chains — no overflow, no exploding updates.
        let m = 32;
        let d = 256;
        let grads = random_gradients(m, d, 21);
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let mut rng = FastRng::new(1, 0);
        let out = cascade_reduce_practical(&refs, &mut rng);
        let max = out.aggregate.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        // Each coordinate is ±RMS of the final aggregate: O(√M) of the
        // per-worker scale, nowhere near the ‖w‖·(√D)^M blow-up.
        assert!(max.is_finite());
        assert!(max < 10.0 * (m as f32).sqrt(), "scale {max}");
    }

    #[test]
    fn practical_cascade_matching_is_near_coin_flip() {
        // Section 3.2.2: the stochastic relay's sign barely correlates with
        // the true aggregate for large D.
        use marsit_tensor::SignVec;
        let m = 4;
        let d = 4096;
        let grads = random_gradients(m, d, 5);
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let truth = SignVec::from_signs(&exact_sum(&refs));
        let mut rng = FastRng::new(3, 0);
        let out = cascade_reduce_practical(&refs, &mut rng);
        let rate = out.final_message.signs().matching_rate(&truth);
        assert!((rate - 0.5).abs() < 0.06, "matching {rate}");
    }

    #[test]
    fn deterministic_cascade_preserves_correlated_majorities() {
        // When all workers agree on every sign, the deterministic relay
        // passes the consensus through unchanged.
        use marsit_tensor::SignVec;
        let d = 128;
        let mut rng = FastRng::new(7, 0);
        let base: Vec<f32> = (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect();
        let grads: Vec<Vec<f32>> = (0..5)
            .map(|_| {
                base.iter()
                    .map(|&x| x * (0.9 + 0.2 * rng.next_f64() as f32))
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let out = cascade_reduce_deterministic(&refs);
        let truth = SignVec::from_signs(&base);
        assert_eq!(out.final_message.signs().matching_rate(&truth), 1.0);
    }

    #[test]
    fn long_unbiased_cascade_saturates_instead_of_panicking() {
        // The appendix decode overflows f32 once (√D)^M passes 3.4e38; it
        // must saturate, not crash.
        let m = 32;
        let d = 512;
        let grads = random_gradients(m, d, 9);
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let mut rng = FastRng::new(11, 0);
        let out = cascade_reduce(&refs, &mut rng);
        assert!(out.final_message.scale().is_finite());
        assert_eq!(out.final_message.scale(), f32::MAX);
    }

    #[test]
    fn exact_sum_matches_manual() {
        let a = [1.0f32, 2.0];
        let b = [0.5f32, -1.0];
        assert_eq!(exact_sum(&[&a, &b]), vec![1.5, 1.0]);
    }

    #[test]
    fn compressions_counted() {
        let grads = random_gradients(5, 8, 1);
        let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
        let out = cascade_reduce(&refs, &mut FastRng::new(0, 0));
        assert_eq!(out.compressions, 5);
    }

    #[test]
    #[should_panic(expected = "empty worker set")]
    fn empty_chain_panics() {
        let _ = cascade_reduce(&[], &mut FastRng::new(0, 0));
    }
}
