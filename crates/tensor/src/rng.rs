//! Deterministic random-number utilities.
//!
//! Every stochastic component in this workspace (data generation, stochastic
//! compressors, the Marsit transient vector) derives its randomness from an
//! explicit `u64` seed so that experiments are reproducible bit-for-bit.
//!
//! The root of the hierarchy is [`split_seed`], a SplitMix64 step used to
//! derive statistically independent child seeds from a parent seed plus a
//! stream index — e.g. one child per worker, per round, per segment.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from `seed` and a `stream` index using SplitMix64.
///
/// Distinct `(seed, stream)` pairs yield decorrelated outputs, which makes
/// this suitable for spawning per-worker or per-round RNGs from one master
/// seed.
///
/// # Examples
///
/// ```
/// use marsit_tensor::rng::split_seed;
///
/// let a = split_seed(42, 0);
/// let b = split_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, split_seed(42, 0)); // deterministic
/// ```
#[must_use]
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined state.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a deterministic [`StdRng`] for the given `(seed, stream)` pair.
///
/// # Examples
///
/// ```
/// use marsit_tensor::rng::rng_for;
/// use rand::Rng;
///
/// let mut r1 = rng_for(7, 3);
/// let mut r2 = rng_for(7, 3);
/// assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
/// ```
#[must_use]
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(split_seed(seed, stream))
}

/// A small, fast xorshift-star generator used on hot paths (per-coordinate
/// Bernoulli draws) where constructing a full `StdRng` would dominate.
///
/// Not cryptographic; statistically adequate for Monte-Carlo use.
///
/// The generator also counts how many `u64` words it has produced
/// ([`FastRng::draws`]) so the telemetry layer can account for entropy
/// consumption exactly. The counter is bookkeeping only: equality and
/// hashing consider the generator *state* alone, so two generators that
/// will produce the same future stream compare equal regardless of how
/// they got there.
#[derive(Debug, Clone)]
pub struct FastRng {
    state: u64,
    draws: u64,
}

impl PartialEq for FastRng {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state
    }
}

impl Eq for FastRng {}

impl std::hash::Hash for FastRng {
    fn hash<H: std::hash::Hasher>(&self, hasher: &mut H) {
        self.state.hash(hasher);
    }
}

impl FastRng {
    /// Creates a generator seeded from `(seed, stream)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use marsit_tensor::rng::FastRng;
    ///
    /// let mut rng = FastRng::new(1, 0);
    /// let x = rng.next_u64();
    /// let y = rng.next_u64();
    /// assert_ne!(x, y);
    /// ```
    #[must_use]
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut state = split_seed(seed, stream);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        Self { state, draws: 0 }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let out = Self::step_raw(&mut self.state);
        self.draws += 1;
        out
    }

    /// Current raw generator state. Together with [`FastRng::set_raw_state`]
    /// and [`FastRng::add_draws`] this lets batch samplers hoist several
    /// independent generators into local registers, interleave their chains
    /// for instruction-level parallelism, and write back states and draw
    /// counts that are indistinguishable from sequential stepping.
    #[inline]
    #[must_use]
    pub(crate) fn raw_state(&self) -> u64 {
        self.state
    }

    /// Restores a state previously advanced outside the struct (see
    /// [`FastRng::raw_state`]).
    #[inline]
    pub(crate) fn set_raw_state(&mut self, state: u64) {
        self.state = state;
    }

    /// Credits `n` draws performed on the raw state outside the struct.
    #[inline]
    pub(crate) fn add_draws(&mut self, n: u64) {
        self.draws += n;
    }

    /// Advances the raw state by one xorshift64* step and returns the output
    /// word — the loop body of [`FastRng::next_u64`] for hoisted states.
    #[inline]
    #[must_use]
    pub(crate) fn step_raw(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The state transition alone (no output multiply): `state` after one
    /// step. This map is linear over GF(2) — each output bit is an XOR of
    /// input bits — which is what makes the [`JumpTables`] jump-ahead exact.
    /// (The `wrapping_mul` in [`FastRng::step_raw`] is only the *output*
    /// scrambler; it never feeds back into the state.)
    #[inline]
    #[must_use]
    pub(crate) fn step_state(state: u64) -> u64 {
        let mut x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x
    }

    /// Number of `u64` words drawn since construction — the generator's
    /// exact entropy consumption, surfaced as an RNG-draw counter by the
    /// telemetry layer.
    ///
    /// # Examples
    ///
    /// ```
    /// use marsit_tensor::rng::FastRng;
    ///
    /// let mut rng = FastRng::new(1, 0);
    /// assert_eq!(rng.draws(), 0);
    /// rng.next_u64();
    /// rng.next_f64(); // one word each
    /// assert_eq!(rng.draws(), 2);
    /// ```
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Captures the generator as a `(state, draws)` pair for checkpointing.
    ///
    /// Restoring via [`FastRng::from_snapshot`] yields a generator whose
    /// future stream and draw accounting are byte-identical to this one's.
    ///
    /// # Examples
    ///
    /// ```
    /// use marsit_tensor::rng::FastRng;
    ///
    /// let mut rng = FastRng::new(1, 0);
    /// rng.next_u64();
    /// let snap = rng.snapshot();
    /// let mut restored = FastRng::from_snapshot(snap);
    /// assert_eq!(rng.next_u64(), restored.next_u64());
    /// assert_eq!(rng.draws(), restored.draws());
    /// ```
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64) {
        (self.state, self.draws)
    }

    /// Rebuilds a generator from a [`FastRng::snapshot`] pair.
    ///
    /// A zero state (impossible to reach from [`FastRng::new`], but possible
    /// in a hand-written snapshot) is remapped exactly as `new` would, so the
    /// generator can never be stuck.
    #[must_use]
    pub fn from_snapshot((state, draws): (u64, u64)) -> Self {
        Self {
            state: if state == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                state
            },
            draws,
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_range requires n > 0");
        // Multiply-shift; negligible bias for the n used here (n << 2^64).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Byte-sliced lookup tables for one fixed power `Aⁿ` of the xorshift64
/// state transition.
///
/// The transition [`FastRng::step_state`] is linear over GF(2), so any power
/// `Aⁿ` is too, and `Aⁿ(s)` equals the XOR of `Aⁿ(eᵢ)` over the set bits of
/// `s`. Slicing the 64 basis images by byte gives eight 256-entry tables
/// (16 KiB) whose XOR-fold evaluates the jump in 8 loads — cheap enough to
/// run once per leapfrog lane per output word.
pub(crate) struct JumpTables {
    t: [[u64; 256]; 8],
}

impl JumpTables {
    /// Builds the tables from the 64 basis images `images[i] = Aⁿ(1 << i)`.
    fn from_basis(images: &[u64; 64]) -> Box<Self> {
        let mut tables = Box::new(JumpTables { t: [[0; 256]; 8] });
        for (b, table) in tables.t.iter_mut().enumerate() {
            for v in 1usize..256 {
                // Subset-XOR recurrence: strip the lowest set bit.
                let low = v.trailing_zeros() as usize;
                table[v] = table[v & (v - 1)] ^ images[8 * b + low];
            }
        }
        tables
    }

    /// `Aⁿ(s)`: the state `n` transitions ahead of `s`, in 8 table loads.
    #[inline]
    #[must_use]
    pub(crate) fn apply(&self, s: u64) -> u64 {
        let b = s.to_le_bytes();
        (self.t[0][usize::from(b[0])] ^ self.t[1][usize::from(b[1])])
            ^ (self.t[2][usize::from(b[2])] ^ self.t[3][usize::from(b[3])])
            ^ ((self.t[4][usize::from(b[4])] ^ self.t[5][usize::from(b[5])])
                ^ (self.t[6][usize::from(b[6])] ^ self.t[7][usize::from(b[7])]))
    }
}

/// The two jump powers the leapfrogged Bernoulli sampler needs for a given
/// per-word draw count `k`: `A^k` seeds the lanes and `A^{7k}` advances each
/// lane past the other seven lanes' draws between its output words.
pub(crate) struct JumpPair {
    pub(crate) step_k: Box<JumpTables>,
    pub(crate) step_7k: Box<JumpTables>,
}

/// One cached [`JumpPair`] per draw count `k ∈ [1, 32]` (index 0 unused).
static JUMP_CACHE: [OnceLock<JumpPair>; 33] = [const { OnceLock::new() }; 33];

/// Returns the cached jump tables for draw count `k`, building them on first
/// use (~64·k transition steps plus two 4 KiB-entry table fills).
pub(crate) fn jump_pair(k: u32) -> &'static JumpPair {
    assert!((1..=32).contains(&k), "draw count out of range: {k}");
    JUMP_CACHE[k as usize].get_or_init(|| {
        let mut images_k = [0u64; 64];
        for (i, img) in images_k.iter_mut().enumerate() {
            let mut s = 1u64 << i;
            for _ in 0..k {
                s = FastRng::step_state(s);
            }
            *img = s;
        }
        let step_k = JumpTables::from_basis(&images_k);
        // A^{7k} basis images via seven applications of the A^k tables.
        let mut images_7k = [0u64; 64];
        for (i, img) in images_7k.iter_mut().enumerate() {
            let mut s = 1u64 << i;
            for _ in 0..7 {
                s = step_k.apply(s);
            }
            *img = s;
        }
        let step_7k = JumpTables::from_basis(&images_7k);
        JumpPair { step_k, step_7k }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(123, 7), split_seed(123, 7));
    }

    #[test]
    fn split_seed_streams_differ() {
        let seeds: Vec<u64> = (0..100).map(|s| split_seed(5, s)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "stream seeds should be distinct");
    }

    #[test]
    fn fast_rng_uniformity_rough() {
        let mut rng = FastRng::new(99, 0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn fast_rng_bernoulli_rate() {
        let mut rng = FastRng::new(4, 2);
        let n = 200_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn fast_rng_range_bounds() {
        let mut rng = FastRng::new(8, 1);
        for _ in 0..10_000 {
            assert!(rng.next_range(10) < 10);
        }
    }

    #[test]
    fn fast_rng_zero_seed_survives() {
        // A (seed, stream) pair whose splitmix output could be zero must not
        // produce a stuck generator.
        let mut rng = FastRng {
            state: 0x9E37_79B9_7F4A_7C15,
            draws: 0,
        };
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn jump_tables_match_sequential_stepping() {
        for k in [1u32, 2, 3, 17, 32] {
            let pair = jump_pair(k);
            for seed in 0..8u64 {
                let s = split_seed(0xDEAD_BEEF, seed) | 1;
                let jumped_k = pair.step_k.apply(s);
                let jumped_7k = pair.step_7k.apply(s);
                let mut stepped = s;
                for step in 1..=(7 * k) {
                    stepped = FastRng::step_state(stepped);
                    if step == k {
                        assert_eq!(jumped_k, stepped, "A^{k} mismatch");
                    }
                }
                assert_eq!(jumped_7k, stepped, "A^(7·{k}) mismatch");
            }
        }
    }

    #[test]
    fn rng_for_matches_std_behaviour() {
        use rand::Rng;
        let mut a = rng_for(11, 0);
        let mut b = rng_for(11, 0);
        for _ in 0..16 {
            assert_eq!(a.gen::<u32>(), b.gen::<u32>());
        }
    }
}
