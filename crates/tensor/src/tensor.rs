//! A minimal dense 2-D tensor over `f32`.
//!
//! The workspace only needs dense linear algebra for the training substrate
//! (matrix multiply, elementwise maps, row/column reductions), so [`Tensor`]
//! is deliberately small: row-major storage, two dimensions, explicit shapes.
//! Vectors are represented as `1 × n` or `n × 1` tensors or as plain slices
//! where that is clearer.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use crate::rng::FastRng;

/// Error produced when tensor shapes are incompatible for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected: (usize, usize),
    actual: (usize, usize),
    op: &'static str,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: expected {:?}, got {:?}",
            self.op, self.expected, self.actual
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major `rows × cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use marsit_tensor::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a `rows × cols` tensor filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` tensor filled with `value`.
    #[must_use]
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.set(i, i, 1.0);
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a tensor with i.i.d. uniform entries in `[-scale, scale)`.
    #[must_use]
    pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut FastRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| (rng.next_f64() as f32 * 2.0 - 1.0) * scale)
            .collect();
        Self { rows, cols, data }
    }

    /// Creates a tensor with i.i.d. standard-normal entries scaled by `std`.
    ///
    /// Uses the Box–Muller transform for determinism across platforms.
    #[must_use]
    pub fn gaussian(rows: usize, cols: usize, std: f32, rng: &mut FastRng) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1 = rng.next_f64().max(1e-300);
            let u2 = rng.next_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push((r * theta.cos()) as f32 * std);
            if data.len() < n {
                data.push((r * theta.sin()) as f32 * std);
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        // ikj loop order: stream over `other` rows for cache friendliness.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ × other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    #[must_use]
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self × otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    #[must_use]
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let dot: f32 = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
                out.data[i * other.rows + j] = dot;
            }
        }
        out
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Adds `row` (length `cols`) to every row, in place. Used for biases.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn add_row_inplace(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.data[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(row)
            {
                *x += b;
            }
        }
    }

    /// Column-wise sum, returning a vector of length `cols`.
    #[must_use]
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// ℓ2-norm of the flattened tensor.
    #[must_use]
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Scales all elements by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += alpha * other`, in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy_inplace(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
    }

    /// Index of the maximum element in row `r` (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or the tensor has zero columns.
    #[must_use]
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        assert!(!row.is_empty(), "argmax of empty row");
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl Add for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, s: f32) -> Tensor {
        let mut out = self.clone();
        out.scale_inplace(s);
        out
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy_inplace(1.0, rhs);
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let mut rng = FastRng::new(1, 0);
        let a = Tensor::gaussian(4, 4, 1.0, &mut rng);
        let i = Tensor::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = FastRng::new(2, 0);
        let a = Tensor::gaussian(5, 3, 1.0, &mut rng);
        let b = Tensor::gaussian(5, 4, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = FastRng::new(3, 0);
        let a = Tensor::gaussian(5, 3, 1.0, &mut rng);
        let b = Tensor::gaussian(4, 3, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = FastRng::new(4, 0);
        let a = Tensor::uniform(3, 7, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_scale() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[0.5, 0.5]]);
        assert_eq!(&a + &b, Tensor::from_rows(&[&[1.5, 2.5]]));
        assert_eq!(&a - &b, Tensor::from_rows(&[&[0.5, 1.5]]));
        assert_eq!(&a * 2.0, Tensor::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Tensor::from_rows(&[&[1.0, 1.0]]);
        let b = Tensor::from_rows(&[&[2.0, 3.0]]);
        a.axpy_inplace(0.5, &b);
        assert_eq!(a, Tensor::from_rows(&[&[2.0, 2.5]]));
    }

    #[test]
    fn sum_rows_and_norm() {
        let a = Tensor::from_rows(&[&[3.0, 0.0], &[1.0, 4.0]]);
        assert_eq!(a.sum_rows(), vec![4.0, 4.0]);
        assert!((a.norm_l2() - (9.0f32 + 1.0 + 16.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_row_ties_pick_first() {
        let a = Tensor::from_rows(&[&[1.0, 5.0, 5.0, 2.0]]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn add_row_inplace_broadcasts() {
        let mut a = Tensor::zeros(2, 3);
        a.add_row_inplace(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = FastRng::new(5, 0);
        let g = Tensor::gaussian(100, 100, 2.0, &mut rng);
        let n = g.len() as f32;
        let mean = g.sum() / n;
        let var = g.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Tensor::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
    }
}
