//! Small statistics helpers shared across the workspace: norms, moments,
//! and online mean/variance accumulation used by the experiment harness.

/// ℓ1-norm of a slice.
///
/// # Examples
///
/// ```
/// assert_eq!(marsit_tensor::stats::norm_l1(&[1.0, -2.0, 3.0]), 6.0);
/// ```
#[must_use]
pub fn norm_l1(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x.abs()).sum()
}

/// ℓ2-norm of a slice.
///
/// # Examples
///
/// ```
/// assert_eq!(marsit_tensor::stats::norm_l2(&[3.0, 4.0]), 5.0);
/// ```
#[must_use]
pub fn norm_l2(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Squared ℓ2-norm of a slice (avoids the square root).
#[must_use]
pub fn norm_l2_sq(xs: &[f32]) -> f64 {
    xs.iter().map(|&x| f64::from(x) * f64::from(x)).sum()
}

/// Squared ℓ2-norm accumulated over eight interleaved f64 lanes.
///
/// Element `j` feeds lane `j % 8`; the eight partials are summed left to
/// right at the end. The fold order (and therefore the exact rounding) is a
/// **frozen contract**: every path that must agree bit-for-bit on a residual
/// norm — whether it materializes the residual or fuses the subtraction into
/// a sign walk — uses this same lane assignment. Not interchangeable with
/// [`norm_l2_sq`], whose serial fold rounds differently.
///
/// The lane structure exists *for* SIMD: the eight f64 accumulators are two
/// 4-wide (or one 8-wide) vector registers, and every build — scalar, AVX2,
/// AVX-512 — performs the identical widen/multiply/add sequence per lane, so
/// the runtime dispatch never changes a bit (no FMA contraction: multiply
/// and add stay separate operations everywhere).
#[must_use]
pub fn norm_l2_sq_striped(xs: &[f32]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
        {
            // SAFETY: feature presence just checked.
            return unsafe { norm_l2_sq_striped_avx512(xs) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence just checked.
            return unsafe { norm_l2_sq_striped_avx2(xs) };
        }
    }
    norm_l2_sq_striped_body(xs)
}

#[inline(always)]
fn norm_l2_sq_striped_body(xs: &[f32]) -> f64 {
    let mut acc = [0.0f64; 8];
    let mut chunks = xs.chunks_exact(8);
    for c in &mut chunks {
        for (a, &x) in acc.iter_mut().zip(c) {
            let x = f64::from(x);
            *a += x * x;
        }
    }
    for (a, &x) in acc.iter_mut().zip(chunks.remainder()) {
        let x = f64::from(x);
        *a += x * x;
    }
    acc.iter().sum()
}

/// # Safety
///
/// Caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn norm_l2_sq_striped_avx2(xs: &[f32]) -> f64 {
    norm_l2_sq_striped_body(xs)
}

/// # Safety
///
/// Caller must have verified AVX-512 F + DQ support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn norm_l2_sq_striped_avx512(xs: &[f32]) -> f64 {
    norm_l2_sq_striped_body(xs)
}

/// Squared Euclidean distance between two slices.
///
/// # Panics
///
/// Panics on length mismatch.
#[must_use]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum()
}

/// Arithmetic mean of a slice (0.0 for empty input).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Half-width of a normal-approximation confidence interval for an
/// empirical Bernoulli(`p`) rate estimated from `n` trials:
/// `Z · sqrt(p(1−p)/n)`, with a floor of `Z/(2√n)` (the worst case at
/// `p = ½`) scaled down to `Z/n` when `p(1−p)` is exactly 0, so the
/// interval never collapses to zero width.
///
/// The workspace's statistical tests use `Z = 5` ([`STAT_TEST_Z`]): a
/// two-sided per-comparison false-positive probability of about
/// `5.7 × 10⁻⁷`, so even a suite making tens of thousands of such
/// comparisons flags spuriously less than once in ~100 full runs —
/// while still catching any real bias several standard errors wide.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `n == 0`.
///
/// # Examples
///
/// ```
/// use marsit_tensor::stats::binomial_ci_halfwidth;
///
/// // p = 0.5, n = 10_000: σ = 0.005, half-width = 0.025 at Z = 5.
/// let hw = binomial_ci_halfwidth(0.5, 10_000);
/// assert!((hw - 0.025).abs() < 1e-12);
/// ```
#[must_use]
pub fn binomial_ci_halfwidth(p: f64, n: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    assert!(n > 0, "need at least one trial");
    let var = p * (1.0 - p);
    if var == 0.0 {
        // Degenerate distribution: allow integer-resolution slack so a
        // single flipped trial is still within the interval.
        STAT_TEST_Z / n as f64
    } else {
        STAT_TEST_Z * (var / n as f64).sqrt()
    }
}

/// The `Z` multiplier used by [`binomial_ci_halfwidth`] — 5 standard
/// errors, i.e. a two-sided tail mass of ≈ 5.7 × 10⁻⁷ per comparison.
pub const STAT_TEST_Z: f64 = 5.0;

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use marsit_tensor::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert!((acc.mean() - 5.0).abs() < 1e-12);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0.0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 if fewer than 1 observation).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation (0.0 if fewer than 2 observations).
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (∞ if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Accumulator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_known_values() {
        assert_eq!(norm_l1(&[1.0, -1.0, 2.0]), 4.0);
        assert_eq!(norm_l2(&[3.0, -4.0]), 5.0);
        assert_eq!(norm_l2_sq(&[3.0, -4.0]), 25.0);
    }

    #[test]
    fn dist_sq_known() {
        assert_eq!(dist_sq(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
        assert_eq!(dist_sq(&[], &[]), 0.0);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn accumulator_single_value() {
        let mut a = Accumulator::new();
        a.push(3.0);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.population_variance(), 0.0);
        assert_eq!(a.sample_std(), 0.0);
        assert_eq!(a.min(), 3.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn accumulator_from_iterator() {
        let a: Accumulator = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn binomial_ci_halfwidth_known_values() {
        // σ = sqrt(0.25/100) = 0.05 → 0.25 at Z = 5.
        assert!((binomial_ci_halfwidth(0.5, 100) - 0.25).abs() < 1e-12);
        // Shrinks as 1/√n.
        let a = binomial_ci_halfwidth(0.3, 1_000);
        let b = binomial_ci_halfwidth(0.3, 4_000);
        assert!((a / b - 2.0).abs() < 1e-9);
        // Degenerate p never yields a zero-width interval.
        assert!(binomial_ci_halfwidth(0.0, 1_000) > 0.0);
        assert!(binomial_ci_halfwidth(1.0, 1_000) > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn binomial_ci_rejects_bad_p() {
        let _ = binomial_ci_halfwidth(1.5, 10);
    }

    #[test]
    fn accumulator_matches_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (f64::from(i) * 0.37).sin() * 5.0)
            .collect();
        let acc: Accumulator = xs.iter().copied().collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((acc.mean() - m).abs() < 1e-9);
        assert!((acc.population_variance() - v).abs() < 1e-9);
    }
}
