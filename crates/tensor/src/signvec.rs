//! Bit-packed sign vectors.
//!
//! A [`SignVec`] stores one bit per gradient coordinate: `1` encodes a
//! non-negative sign (`+1`) and `0` a negative sign (`−1`). This is the wire
//! format of every one-bit message in the workspace — Marsit's `⊙` operator
//! (word-parallel `AND`/`OR`/`XOR`), signSGD's majority vote, and the bit
//! accounting used by the experiment harness all operate on it.
//!
//! Bits are packed little-endian into `u64` words; unused high bits of the
//! last word are kept at zero as an invariant so that word-level operations
//! and popcounts need no masking on reads.

use std::fmt;

use crate::rng::FastRng;

const WORD_BITS: usize = 64;

/// Fixed-point resolution of the word-parallel Bernoulli sampler: the
/// probability `p` is rounded to the nearest multiple of `2⁻³²` before
/// sampling, so any `p` is realized with absolute bias at most `2⁻³³`
/// (exactly zero for dyadic `p = a/2^k` with `k ≤ 32`, which covers the
/// `a/(a+b)` combine weights whenever `a + b` is a power of two).
const BERNOULLI_FIXED_BITS: u32 = 32;

/// Rounds `p` to the fixed-point grid: returns `q ∈ [0, 2³²]` with
/// `q/2³² ≈ p`. Values outside `[0, 1]` clamp to the endpoints.
#[inline]
fn bernoulli_fixed_point(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        1 << BERNOULLI_FIXED_BITS
    } else {
        // p ∈ (0, 1): the product is ≤ 2³² and rounds exactly for dyadic p.
        (p * (1u64 << BERNOULLI_FIXED_BITS) as f64).round() as u64
    }
}

/// Generates one 64-lane word of i.i.d. Bernoulli(`q/2³²`) bits from
/// `32 − trailing_zeros(q)` calls to [`FastRng::next_u64`].
///
/// Each lane `j` decides `U_j < p` where `U_j` is the uniform number whose
/// binary digits are bit `j` of successive random words. The comparison is
/// evaluated for all 64 lanes at once by scanning the fixed-point digits of
/// `p` from least to most significant: prepending digit `p_i` as the new
/// most-significant digit updates the partial verdict `r` as
/// `r ← r | !u` when `p_i = 1` (a zero uniform digit decides "less than"
/// outright) and `r ← r & !u` when `p_i = 0` (a one uniform digit decides
/// "not less than"). Digits below the lowest set bit of `q` leave `r = 0`
/// unchanged and consume no randomness.
#[inline]
fn bernoulli_word(q: u64, rng: &mut FastRng) -> u64 {
    debug_assert!(q > 0 && q < 1 << BERNOULLI_FIXED_BITS);
    let mut r = 0u64;
    for i in q.trailing_zeros()..BERNOULLI_FIXED_BITS {
        let u = rng.next_u64();
        r = if (q >> i) & 1 == 1 { r | !u } else { r & !u };
    }
    r
}

/// Packs one ≤64-value chunk into a sign word (bit = 1 iff `value >= 0`).
#[inline]
fn pack_sign_word(chunk: &[f32]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if chunk.len() == WORD_BITS {
        // SAFETY: SSE2 is part of the x86_64 baseline and the chunk holds
        // exactly 64 values.
        return unsafe { pack_sign_word_sse2(chunk) };
    }
    pack_sign_word_scalar(chunk)
}

/// Portable packing path: also the reference the SIMD path is tested
/// against, and the tail path for chunks shorter than a word.
#[inline]
fn pack_sign_word_scalar(chunk: &[f32]) -> u64 {
    let mut w = 0u64;
    for (j, &x) in chunk.iter().enumerate() {
        let bits = x.to_bits();
        // Clear sign bit ⇒ non-negative; -0.0 carries a set sign
        // bit but still compares `>= 0`, so it stays positive.
        let positive = (bits >> 31 == 0) | (bits == 0x8000_0000);
        w |= u64::from(positive) << j;
    }
    w
}

/// SSE2 packing of one full 64-value chunk: 4 lanes per compare, sign bits
/// gathered with `movmskps`. "Positive" is `bits ≤ 0x8000_0000` (every
/// clear-sign pattern plus `-0.0`), evaluated as the signed comparison
/// `(bits ^ 0x8000_0000) < 1` so a single SSE2 `pcmpgtd` decides all lanes.
///
/// # Safety
///
/// `chunk` must hold exactly 64 values. SSE2 is unconditionally available
/// on `x86_64`, so there is no runtime feature requirement.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn pack_sign_word_sse2(chunk: &[f32]) -> u64 {
    use std::arch::x86_64::{
        __m128i, _mm_castsi128_ps, _mm_cmplt_epi32, _mm_loadu_si128, _mm_movemask_ps,
        _mm_set1_epi32, _mm_xor_si128,
    };
    debug_assert_eq!(chunk.len(), WORD_BITS);
    let flip = _mm_set1_epi32(i32::MIN);
    let one = _mm_set1_epi32(1);
    let mut w = 0u64;
    for (i, quad) in chunk.chunks_exact(4).enumerate() {
        // SAFETY: `quad` points at 4 f32s = 16 readable bytes; loadu has no
        // alignment requirement.
        let v = unsafe { _mm_loadu_si128(quad.as_ptr().cast::<__m128i>()) };
        let positive = _mm_cmplt_epi32(_mm_xor_si128(v, flip), one);
        let mask = _mm_movemask_ps(_mm_castsi128_ps(positive)) as u64;
        w |= mask << (4 * i);
    }
    w
}

/// One lane of [`fill_bernoulli_mask_words`]: an independent RNG stream and
/// the word buffer its Bernoulli mask words are written into.
pub struct MaskLane<'a> {
    /// The lane's generator; advanced exactly as if `bernoulli_word` had
    /// been called sequentially for every output word.
    pub rng: &'a mut FastRng,
    /// Destination for the lane's mask words (64 Bernoulli lanes per word;
    /// tail bits beyond a vector's length are arbitrary, as in
    /// [`SignVec::transient_combine_into`]).
    pub out: &'a mut [u64],
}

/// Chains interleaved per register batch: enough to hide the xorshift
/// dependency latency on superscalar cores, small enough that states and
/// accumulators stay in registers, and exactly one AVX-512 register (or two
/// AVX2 registers) of `u64` lanes for the vectorized digit loop.
const MASK_BATCH_LANES: usize = 8;

/// Minimum buffer size (in words) for the leapfrogged single-stream sampler;
/// below this the `A^k` lane-seeding jumps cost more than interleaving saves
/// and the sequential scan wins.
const JUMP_MIN_WORDS: usize = 4 * MASK_BATCH_LANES;

/// One digit-scan word for up to [`MASK_BATCH_LANES`] independent chains:
/// advances `st[..n]` by `32 − tz` draws each and returns the Bernoulli
/// words they produce. Per chain this is bit-identical to `bernoulli_word`
/// (the branchless select `(a & v) | (m & (a | v))` equals `a | v` under
/// `m = !0` and `a & v` under `m = 0`, with `v = !u`); only the cross-chain
/// interleaving differs, which is what converts the 32-draw latency chain
/// into 8 throughput-bound lanes.
#[inline(always)]
fn digit_word_lanes_body(
    q: u64,
    tz: u32,
    st: &mut [u64; MASK_BATCH_LANES],
    n: usize,
) -> [u64; MASK_BATCH_LANES] {
    // Work on a local copy so the states live in registers for the whole
    // scan instead of round-tripping through `st`'s memory every digit.
    let mut s = *st;
    let mut acc = [0u64; MASK_BATCH_LANES];
    for i in tz..BERNOULLI_FIXED_BITS {
        let m = 0u64.wrapping_sub((q >> i) & 1);
        for (a, s) in acc[..n].iter_mut().zip(&mut s[..n]) {
            let v = !FastRng::step_raw(s);
            *a = (*a & v) | (m & (*a | v));
        }
    }
    *st = s;
    acc
}

/// Full-width monomorphization compiled for AVX2: the fixed 8-lane inner
/// loop vectorizes to `u64x4` shifts/xors plus the `pmuludq`-decomposed
/// 64-bit multiply.
///
/// # Safety
///
/// Caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn digit_word_lanes_avx2(
    q: u64,
    tz: u32,
    st: &mut [u64; MASK_BATCH_LANES],
) -> [u64; MASK_BATCH_LANES] {
    digit_word_lanes_body(q, tz, st, MASK_BATCH_LANES)
}

/// Full-width monomorphization compiled for AVX-512 (`vpmullq` does the
/// 64-bit output multiply natively).
///
/// # Safety
///
/// Caller must have verified AVX-512 F + DQ support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn digit_word_lanes_avx512(
    q: u64,
    tz: u32,
    st: &mut [u64; MASK_BATCH_LANES],
) -> [u64; MASK_BATCH_LANES] {
    digit_word_lanes_body(q, tz, st, MASK_BATCH_LANES)
}

/// Dispatches one digit-scan word to the widest available SIMD build of the
/// lane body (full batches only; ragged groups stay scalar). All builds run
/// the identical instruction-order recurrence, so the selected ISA never
/// changes a single output bit.
#[inline]
fn digit_word_lanes(
    q: u64,
    tz: u32,
    st: &mut [u64; MASK_BATCH_LANES],
    n: usize,
) -> [u64; MASK_BATCH_LANES] {
    #[cfg(target_arch = "x86_64")]
    if n == MASK_BATCH_LANES {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq") {
            // SAFETY: feature presence just checked.
            return unsafe { digit_word_lanes_avx512(q, tz, st) };
        }
        if is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence just checked.
            return unsafe { digit_word_lanes_avx2(q, tz, st) };
        }
    }
    digit_word_lanes_body(q, tz, st, n)
}

/// Fills `out` with the exact word stream `for w in out { *w =
/// bernoulli_word(q, rng) }` would produce — same words, same final state,
/// same draw count — but leapfrogged across [`MASK_BATCH_LANES`] virtual
/// lanes of the *single* stream so the digit scan runs throughput-bound.
///
/// Lane `j` of block `b` starts at the serial state after `(8b + j)·k`
/// draws (`k` = draws per word): lanes are seeded by `A^k` jumps and hop
/// `A^{7k}` between their output words via [`crate::rng::JumpTables`], so
/// every word is computed from exactly the draws the sequential scan would
/// have given it. Small buffers skip the lane setup and scan sequentially.
fn fill_bernoulli_words(q: u64, rng: &mut FastRng, out: &mut [u64]) {
    debug_assert!(q > 0 && q < 1 << BERNOULLI_FIXED_BITS);
    let tz = q.trailing_zeros();
    let k = BERNOULLI_FIXED_BITS - tz;
    if out.len() < JUMP_MIN_WORDS {
        for w in out.iter_mut() {
            *w = bernoulli_word(q, rng);
        }
        return;
    }
    let jump = crate::rng::jump_pair(k);
    let blocks = out.len() / MASK_BATCH_LANES;
    let mut st = [0u64; MASK_BATCH_LANES];
    st[0] = rng.raw_state();
    for j in 1..MASK_BATCH_LANES {
        st[j] = jump.step_k.apply(st[j - 1]);
    }
    let mut first = true;
    for chunk in out[..blocks * MASK_BATCH_LANES].chunks_exact_mut(MASK_BATCH_LANES) {
        if !first {
            for s in &mut st {
                *s = jump.step_7k.apply(*s);
            }
        }
        first = false;
        let acc = digit_word_lanes(q, tz, &mut st, MASK_BATCH_LANES);
        chunk.copy_from_slice(&acc);
    }
    // Lane 7's post-block state is the serial state after all 8B words
    // (no trailing jump), so write-back plus the sequential tail leaves the
    // generator indistinguishable from a sequential scan.
    rng.set_raw_state(st[MASK_BATCH_LANES - 1]);
    rng.add_draws(blocks as u64 * MASK_BATCH_LANES as u64 * u64::from(k));
    for w in &mut out[blocks * MASK_BATCH_LANES..] {
        *w = bernoulli_word(q, rng);
    }
}

/// Fills each lane's buffer with Bernoulli(`p`) mask words, drawing the
/// lanes' independent RNG streams in an interleaved schedule.
///
/// Per lane this is *bit-identical* to the sequential loop
/// `for w in out { *w = bernoulli_word(q, rng) }` — the same words land in
/// `out` and the generator finishes in the same state with the same draw
/// count. Only the inter-lane execution order differs: up to
/// 8 independent xorshift chains advance round-robin per fixed-point digit,
/// which breaks the single-chain latency serialization that dominates
/// non-dyadic sampling (32 dependent draws per word).
///
/// # Panics
///
/// Panics if `p` rounds to a degenerate fixed-point probability (0 or 1);
/// degenerate combines draw nothing and must be handled by the caller, as
/// in [`SignVec::transient_combine_assign`].
pub fn fill_bernoulli_mask_words(p: f64, lanes: &mut [MaskLane<'_>]) {
    let q = bernoulli_fixed_point(p);
    assert!(
        q > 0 && q < 1 << BERNOULLI_FIXED_BITS,
        "degenerate probability draws nothing; handle it before batching"
    );
    let tz = q.trailing_zeros();
    let draws_per_word = u64::from(BERNOULLI_FIXED_BITS - tz);
    for group in lanes.chunks_mut(MASK_BATCH_LANES) {
        let n = group.len();
        // Hoist the states into a register-resident array; the lanes below
        // `common` words advance together, stragglers finish sequentially.
        let mut st = [0u64; MASK_BATCH_LANES];
        for (s, lane) in st.iter_mut().zip(group.iter()) {
            *s = lane.rng.raw_state();
        }
        let common = group.iter().map(|l| l.out.len()).min().unwrap_or(0);
        for w in 0..common {
            // Same digit recurrence as `bernoulli_word`, applied to all
            // lanes before the next (dependent) digit of any lane.
            let acc = digit_word_lanes(q, tz, &mut st, n);
            for (lane, &a) in group.iter_mut().zip(&acc[..n]) {
                lane.out[w] = a;
            }
        }
        for (lane, &s) in group.iter_mut().zip(&st[..n]) {
            lane.rng.set_raw_state(s);
            lane.rng.add_draws(common as u64 * draws_per_word);
        }
        // Ragged tails (segment word counts can differ by one) fall back to
        // the sequential sampler on the written-back states.
        for lane in group.iter_mut() {
            for w in common..lane.out.len() {
                lane.out[w] = bernoulli_word(q, lane.rng);
            }
        }
    }
}

/// Allocation-free sibling of [`fill_bernoulli_mask_words`]: lane `i` draws
/// Bernoulli(`p`) mask words from `rngs[i]` into the window
/// `flat[windows[i].0 ..][.. windows[i].1]` of one flat buffer, instead of
/// through per-lane `&mut [u64]` handles. Callers that plan many mask
/// streams per step (the round mask planner) can therefore describe a whole
/// step with plain `(offset, len)` pairs and never materialize a `Vec` of
/// borrows.
///
/// Per lane the output, final RNG state, and draw count are bit-identical to
/// the sequential scan `for w in window { *w = bernoulli_word(q, rng) }`,
/// exactly as for [`fill_bernoulli_mask_words`]. Windows may overlap or
/// alias freely — later lanes simply overwrite earlier ones — though in
/// practice planners pass disjoint windows.
///
/// # Panics
///
/// Panics if `rngs` and `windows` disagree in length, if any window exceeds
/// `flat`, or if `p` rounds to a degenerate fixed-point probability.
pub fn fill_bernoulli_masks_indexed(
    p: f64,
    rngs: &mut [FastRng],
    flat: &mut [u64],
    windows: &[(usize, usize)],
) {
    assert_eq!(rngs.len(), windows.len(), "one RNG stream per window");
    let q = bernoulli_fixed_point(p);
    assert!(
        q > 0 && q < 1 << BERNOULLI_FIXED_BITS,
        "degenerate probability draws nothing; handle it before batching"
    );
    let tz = q.trailing_zeros();
    let draws_per_word = u64::from(BERNOULLI_FIXED_BITS - tz);
    for (group, wins) in rngs
        .chunks_mut(MASK_BATCH_LANES)
        .zip(windows.chunks(MASK_BATCH_LANES))
    {
        let n = group.len();
        let mut st = [0u64; MASK_BATCH_LANES];
        for (s, rng) in st.iter_mut().zip(group.iter()) {
            *s = rng.raw_state();
        }
        let common = wins.iter().map(|&(_, len)| len).min().unwrap_or(0);
        for w in 0..common {
            let acc = digit_word_lanes(q, tz, &mut st, n);
            for (&(start, _), &a) in wins.iter().zip(&acc[..n]) {
                flat[start + w] = a;
            }
        }
        for (rng, &s) in group.iter_mut().zip(&st[..n]) {
            rng.set_raw_state(s);
            rng.add_draws(common as u64 * draws_per_word);
        }
        for (rng, &(start, len)) in group.iter_mut().zip(wins) {
            for w in common..len {
                flat[start + w] = bernoulli_word(q, rng);
            }
        }
    }
}

/// Width of one explicit SIMD group in the masked `⊙` kernel: four `u64`
/// words = one AVX2 register (half an AVX-512 register), small enough that
/// the scalar tail stays trivial.
const COMBINE_LANES: usize = 4;

/// Word-level masked `⊙` kernel: `l[w] ← (r & l) | ((r ^ l) & (l ^ keep))`
/// for every word, in explicit `u64x4` groups so the three-operand merge
/// vectorizes regardless of surrounding loop shape. Grouping only reorders
/// *which word is computed when*; each word's value is untouched, so the
/// kernel is bit-identical to the straight zip it replaces.
#[inline]
pub(crate) fn combine_words_masked(l: &mut [u64], r: &[u64], keep: &[u64]) {
    let mut lc = l.chunks_exact_mut(COMBINE_LANES);
    let mut rc = r.chunks_exact(COMBINE_LANES);
    let mut kc = keep.chunks_exact(COMBINE_LANES);
    for ((lg, rg), kg) in (&mut lc).zip(&mut rc).zip(&mut kc) {
        for j in 0..COMBINE_LANES {
            let a = lg[j];
            let b = rg[j];
            lg[j] = (b & a) | ((b ^ a) & (a ^ kg[j]));
        }
    }
    for ((a, &b), &k) in lc
        .into_remainder()
        .iter_mut()
        .zip(rc.remainder())
        .zip(kc.remainder())
    {
        *a = (b & *a) | ((b ^ *a) & (*a ^ k));
    }
}

/// Per-byte `±scale` expansion table for the one-bit sign rebuild.
///
/// Row `b` holds the eight `f32` values the bits of `b` select: `+scale`
/// verbatim for a set bit, `−scale` by IEEE sign-bit flip for a clear one —
/// exactly the floats the branchless per-lane rebuild produces, so LUT and
/// branchless paths are interchangeable bit for bit. Expanding a packed
/// word through the table is eight 32-byte row copies with no per-lane bit
/// tests, which is what lets the ±η rebuild run at copy bandwidth.
///
/// The table is 8 KiB; build it once per scale (e.g. once per round, since
/// the Marsit scale `η/K` is fixed within a round) and reuse it across
/// workers and calls.
pub struct ScaledSignLut {
    rows: [[f32; 8]; 256],
}

impl ScaledSignLut {
    /// Builds the expansion table for `scale`.
    #[must_use]
    pub fn new(scale: f32) -> Self {
        let scale_bits = scale.to_bits();
        let pos = f32::from_bits(scale_bits);
        let neg = f32::from_bits(scale_bits ^ (1 << 31));
        let mut rows = [[0.0f32; 8]; 256];
        for (b, row) in rows.iter_mut().enumerate() {
            for (i, e) in row.iter_mut().enumerate() {
                *e = if (b >> i) & 1 == 1 { pos } else { neg };
            }
        }
        Self { rows }
    }

    /// The eight `±scale` values selected by `byte`'s bits.
    #[inline]
    #[must_use]
    pub fn row(&self, byte: u8) -> &[f32; 8] {
        &self.rows[usize::from(byte)]
    }
}

/// One (possibly partial) 64-element chunk of the fused residual norm,
/// accumulated into the eight striped lanes — the scalar reference the SIMD
/// builds below must match operation-for-operation per lane: f32 subtract,
/// widen to f64, multiply, then a separate add (never fused).
#[inline(always)]
fn residual_chunk_into(lanes: &mut [f64; 8], hc: &[f32], w: u64, lut: &ScaledSignLut) {
    let mut groups = hc.chunks_exact(8);
    let mut k = 0u32;
    for g in &mut groups {
        let row = lut.row((w >> (8 * k)) as u8);
        for i in 0..8 {
            let c = f64::from(g[i] - row[i]);
            lanes[i] += c * c;
        }
        k += 1;
    }
    let rem = groups.remainder();
    if !rem.is_empty() {
        // `k < 8` here: a full 64-element chunk leaves no remainder, so the
        // shift below never reaches the word width.
        let row = lut.row((w >> (8 * k)) as u8);
        for (i, &hj) in rem.iter().enumerate() {
            let c = f64::from(hj - row[i]);
            lanes[i] += c * c;
        }
    }
}

/// Portable body of [`SignVec::residual_norm_sq_striped`].
fn residual_norm_sq_striped_body(words: &[u64], h: &[f32], lut: &ScaledSignLut) -> f64 {
    let mut lanes = [0.0f64; 8];
    for (hc, &w) in h.chunks(WORD_BITS).zip(words) {
        residual_chunk_into(&mut lanes, hc, w, lut);
    }
    lanes.iter().sum()
}

/// AVX2 build: the eight f64 lanes are two `__m256d` accumulators (lanes
/// 0–3 / 4–7); each 8-element group is one f32 subtract, two widens, two
/// multiplies, two adds — the same per-lane sequence as the scalar chunk,
/// so the result is bit-identical. The final partial chunk (if any) reuses
/// the scalar chunk on the extracted lanes, preserving the "tail adds last
/// per lane" order.
///
/// # Safety
///
/// Caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn residual_norm_sq_striped_avx2(words: &[u64], h: &[f32], lut: &ScaledSignLut) -> f64 {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_castps256_ps128, _mm256_cvtps_pd, _mm256_extractf128_ps,
        _mm256_loadu_ps, _mm256_mul_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_ps,
    };
    let full = h.len() / WORD_BITS;
    let mut acc_lo = _mm256_setzero_pd();
    let mut acc_hi = _mm256_setzero_pd();
    for (hc, &w) in h[..full * WORD_BITS].chunks_exact(WORD_BITS).zip(words) {
        for k in 0..8 {
            // SAFETY: `hc` has exactly 64 elements and rows are 8 floats.
            let h8 = unsafe { _mm256_loadu_ps(hc.as_ptr().add(k * 8)) };
            let row = unsafe { _mm256_loadu_ps(lut.row((w >> (8 * k)) as u8).as_ptr()) };
            let diff = _mm256_sub_ps(h8, row);
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(diff));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(diff));
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(lo, lo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(hi, hi));
        }
    }
    let mut lanes = [0.0f64; 8];
    // SAFETY: `lanes` holds exactly 2 × 4 f64.
    unsafe {
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc_lo);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc_hi);
    }
    if h.len() > full * WORD_BITS {
        residual_chunk_into(&mut lanes, &h[full * WORD_BITS..], words[full], lut);
    }
    lanes.iter().sum()
}

/// AVX-512 build: one `__m512d` accumulator holds all eight lanes; each
/// 8-element group is one f32 subtract, one widen, one multiply, one add —
/// per lane the identical operation sequence again.
///
/// # Safety
///
/// Caller must have verified AVX-512 F + DQ support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn residual_norm_sq_striped_avx512(words: &[u64], h: &[f32], lut: &ScaledSignLut) -> f64 {
    use std::arch::x86_64::{
        _mm256_loadu_ps, _mm256_sub_ps, _mm512_add_pd, _mm512_cvtps_pd, _mm512_mul_pd,
        _mm512_setzero_pd, _mm512_storeu_pd,
    };
    let full = h.len() / WORD_BITS;
    let mut acc = _mm512_setzero_pd();
    for (hc, &w) in h[..full * WORD_BITS].chunks_exact(WORD_BITS).zip(words) {
        for k in 0..8 {
            // SAFETY: `hc` has exactly 64 elements and rows are 8 floats.
            let h8 = unsafe { _mm256_loadu_ps(hc.as_ptr().add(k * 8)) };
            let row = unsafe { _mm256_loadu_ps(lut.row((w >> (8 * k)) as u8).as_ptr()) };
            let diff = _mm256_sub_ps(h8, row);
            let wide = _mm512_cvtps_pd(diff);
            acc = _mm512_add_pd(acc, _mm512_mul_pd(wide, wide));
        }
    }
    let mut lanes = [0.0f64; 8];
    // SAFETY: `lanes` holds exactly 8 f64.
    unsafe { _mm512_storeu_pd(lanes.as_mut_ptr(), acc) };
    if h.len() > full * WORD_BITS {
        residual_chunk_into(&mut lanes, &h[full * WORD_BITS..], words[full], lut);
    }
    lanes.iter().sum()
}

/// A fixed-length, bit-packed vector of signs.
///
/// # Examples
///
/// ```
/// use marsit_tensor::SignVec;
///
/// let v = SignVec::from_signs(&[1.5, -0.2, 0.0, -7.0]);
/// assert_eq!(v.to_signs(), vec![1.0, -1.0, 1.0, -1.0]);
/// assert_eq!(v.count_ones(), 2);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SignVec {
    len: usize,
    words: Vec<u64>,
}

impl SignVec {
    /// Creates a vector of `len` bits, all zero (all-negative signs).
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a vector of `len` bits, all one (all-positive signs).
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            len,
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
        };
        v.mask_tail();
        v
    }

    /// Packs the signs of `values`: bit = 1 iff `value >= 0`.
    ///
    /// Zero (including `-0.0`) is treated as positive, matching `sgn`
    /// conventions in signSGD implementations (a zero gradient coordinate
    /// transmits `+1`). NaN packs by its IEEE sign bit.
    ///
    /// Sign extraction is word-parallel: each 64-value chunk is reduced to
    /// one packed word via `f32::to_bits() >> 31`, with no per-bit
    /// read-modify-write of the destination.
    #[must_use]
    pub fn from_signs(values: &[f32]) -> Self {
        let mut v = Self {
            len: 0,
            words: Vec::with_capacity(values.len().div_ceil(WORD_BITS)),
        };
        v.assign_from_signs(values);
        v
    }

    /// Re-packs `values` into this vector in place, reusing the word buffer
    /// (same packing rules as [`SignVec::from_signs`]). The vector takes the
    /// length of `values`.
    pub fn assign_from_signs(&mut self, values: &[f32]) {
        self.len = values.len();
        self.words.clear();
        self.words
            .extend(values.chunks(WORD_BITS).map(pack_sign_word));
    }

    /// Packs up to 64 values into one sign word (bit `j` = 1 iff
    /// `values[j] >= 0`, with `-0.0` counting as non-negative) — the
    /// word-level building block of [`SignVec::from_signs`], exposed so
    /// fused pipelines can pack a freshly computed chunk while it is still
    /// cache-hot and assemble the vector with
    /// [`SignVec::assign_from_words`]. Bits beyond `values.len()` are zero.
    ///
    /// # Panics
    ///
    /// Panics if `values` holds more than 64 values.
    #[must_use]
    pub fn pack_word(values: &[f32]) -> u64 {
        assert!(values.len() <= WORD_BITS, "chunk exceeds one word");
        pack_sign_word(values)
    }

    /// Replaces this vector with `len` bits taken from packed `words`,
    /// reusing the word buffer. Bits of the final word at or above `len`
    /// are cleared to keep the tail invariant.
    ///
    /// Together with [`SignVec::pack_word`] this is exactly
    /// [`SignVec::assign_from_signs`] split into per-chunk packing and
    /// assembly.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != ⌈len/64⌉`.
    pub fn assign_from_words(&mut self, len: usize, words: &[u64]) {
        assert_eq!(words.len(), len.div_ceil(WORD_BITS), "word count mismatch");
        self.len = len;
        self.words.clear();
        self.words.extend_from_slice(words);
        self.mask_tail();
    }

    /// Creates a vector whose bit `j` is drawn Bernoulli(`probs[j]`).
    ///
    /// This is the *transient vector* generator of Marsit Eq. (2) in its most
    /// general form; [`SignVec::bernoulli_uniform`] covers the common case of
    /// one shared probability.
    #[must_use]
    pub fn bernoulli(probs: &[f64], rng: &mut FastRng) -> Self {
        let mut v = Self::zeros(probs.len());
        for (i, &p) in probs.iter().enumerate() {
            if rng.bernoulli(p) {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a vector of `len` i.i.d. Bernoulli(`p`) bits.
    ///
    /// Word-parallel: 64 bits are drawn at once by binary expansion of `p`
    /// in 32-bit fixed point (see `bernoulli_word`), costing
    /// [`SignVec::bernoulli_word_draws`]`(p)` ≤ 32 RNG words per 64 lanes
    /// instead of 64 sequential floating-point draws. `p` is realized
    /// exactly when it is dyadic with denominator ≤ 2³² (e.g. the `a/(a+b)`
    /// combine weights with power-of-two aggregate counts); otherwise the
    /// per-bit bias is at most 2⁻³³ from rounding to the fixed-point grid.
    ///
    /// **Draw accounting is word-exact:** the number of `next_u64` calls is
    /// `bernoulli_word_draws(p) · ⌈len/64⌉`, a function of the *word* count
    /// only — so payload lengths within the same word (e.g. 63 vs 64) leave
    /// a shared RNG in the same state, and generating a vector in
    /// word-aligned segments draws the exact same stream as generating it
    /// in one call. Large buffers run the digit scan leapfrogged across
    /// 8 jump-ahead lanes of the same stream (see `fill_bernoulli_words`),
    /// which changes no output bit, state, or draw count — only the wall
    /// clock, by breaking the 32-draw-per-word latency chain of non-dyadic
    /// probabilities.
    #[must_use]
    pub fn bernoulli_uniform(len: usize, p: f64, rng: &mut FastRng) -> Self {
        let q = bernoulli_fixed_point(p);
        if q == 0 {
            return Self::zeros(len);
        }
        if q == 1 << BERNOULLI_FIXED_BITS {
            return Self::ones(len);
        }
        let mut v = Self::zeros(len);
        fill_bernoulli_words(q, rng, &mut v.words);
        v.mask_tail();
        v
    }

    /// RNG words consumed per 64 lanes by [`SignVec::bernoulli_uniform`]:
    /// `32 − trailing_zeros(round(p·2³²))`, or 0 for degenerate `p`.
    #[must_use]
    pub fn bernoulli_word_draws(p: f64) -> u32 {
        let q = bernoulli_fixed_point(p);
        if q == 0 || q == 1 << BERNOULLI_FIXED_BITS {
            0
        } else {
            BERNOULLI_FIXED_BITS - q.trailing_zeros()
        }
    }

    /// Reference implementation of [`SignVec::bernoulli_uniform`]: one
    /// scalar `f64` draw per bit.
    ///
    /// Kept as the baseline the word-parallel generator is benchmarked and
    /// statistically cross-checked against; it consumes a different RNG
    /// stream (64 draws per word) and is not bit-compatible with the
    /// word-parallel path.
    #[must_use]
    pub fn bernoulli_uniform_scalar(len: usize, p: f64, rng: &mut FastRng) -> Self {
        let mut v = Self::zeros(len);
        for word in &mut v.words {
            let mut w = 0u64;
            for b in 0..WORD_BITS {
                if rng.bernoulli(p) {
                    w |= 1 << b;
                }
            }
            *word = w;
        }
        v.mask_tail();
        v
    }

    /// Number of bits in the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Expands back to a `±1.0` vector.
    #[must_use]
    pub fn to_signs(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.write_scaled_signs(1.0, &mut out);
        out
    }

    /// Writes `±scale` into `out[j]` for each bit `j`.
    ///
    /// Word-parallel: expands one packed word into 64 output lanes per
    /// iteration without per-bit bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    /// [`SignVec::write_scaled_signs`] into a freshly collected `Vec`,
    /// writing each element exactly once (no zero-fill pass). Produces
    /// bit-identical values to `write_scaled_signs`.
    #[must_use]
    pub fn scaled_signs(&self, scale: f32) -> Vec<f32> {
        let scale_bits = scale.to_bits();
        let mut out = Vec::with_capacity(self.len);
        for (start, &w) in (0..self.len).step_by(WORD_BITS).zip(&self.words) {
            let n = WORD_BITS.min(self.len - start);
            out.extend((0..n).map(|j| {
                let flip = (((w >> j) & 1) ^ 1) as u32;
                f32::from_bits(scale_bits ^ (flip << 31))
            }));
        }
        out
    }

    pub fn write_scaled_signs(&self, scale: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        // Branchless sign injection: bit 1 keeps `scale`, bit 0 flips its
        // IEEE sign bit — exact for any `scale`, and vectorizable.
        let scale_bits = scale.to_bits();
        for (chunk, &w) in out.chunks_mut(WORD_BITS).zip(&self.words) {
            for (j, o) in chunk.iter_mut().enumerate() {
                let flip = (((w >> j) & 1) ^ 1) as u32;
                *o = f32::from_bits(scale_bits ^ (flip << 31));
            }
        }
    }

    /// [`SignVec::write_scaled_signs`] through a prebuilt [`ScaledSignLut`]:
    /// full 64-lane chunks expand as eight 32-byte row copies, the ragged
    /// tail falls back to the branchless per-lane form. Bit-identical to
    /// `write_scaled_signs(scale, out)` when `lut` was built for `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn write_scaled_signs_lut(&self, lut: &ScaledSignLut, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        for (chunk, &w) in out.chunks_mut(WORD_BITS).zip(&self.words) {
            if chunk.len() == WORD_BITS {
                for (k, group) in chunk.chunks_exact_mut(8).enumerate() {
                    group.copy_from_slice(lut.row((w >> (8 * k)) as u8));
                }
            } else {
                let scale_bits = lut.row(0xFF)[0].to_bits();
                for (j, o) in chunk.iter_mut().enumerate() {
                    let flip = (((w >> j) & 1) ^ 1) as u32;
                    *o = f32::from_bits(scale_bits ^ (flip << 31));
                }
            }
        }
    }

    /// Striped squared norm of the residual `h − g`, where `g` is the
    /// `±scale` expansion of this vector's bits, without materializing `g`
    /// or the difference: the diagnostic norm of the deferred-compensation
    /// hot path, fused so it reads `h` exactly once.
    ///
    /// Bit-identical to
    /// `stats::norm_l2_sq_striped(&materialized_difference)` — element `j`'s
    /// f32 difference squares into f64 lane `j % 8` (word chunks start at
    /// multiples of 64, so the in-chunk lane is the global `j % 8`), with
    /// the same dispatch guarantee: every ISA build runs the identical
    /// subtract/widen/multiply/add sequence, no FMA contraction anywhere.
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != self.len()`.
    #[must_use]
    pub fn residual_norm_sq_striped(&self, h: &[f32], lut: &ScaledSignLut) -> f64 {
        assert_eq!(h.len(), self.len, "residual length mismatch");
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
            {
                // SAFETY: feature presence just checked.
                return unsafe { residual_norm_sq_striped_avx512(&self.words, h, lut) };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence just checked.
                return unsafe { residual_norm_sq_striped_avx2(&self.words, h, lut) };
            }
        }
        residual_norm_sq_striped_body(&self.words, h, lut)
    }

    /// Word-parallel bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn and(&self, other: &SignVec) -> SignVec {
        self.zip_words(other, |a, b| a & b)
    }

    /// Word-parallel bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn or(&self, other: &SignVec) -> SignVec {
        self.zip_words(other, |a, b| a | b)
    }

    /// Word-parallel bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn xor(&self, other: &SignVec) -> SignVec {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Bitwise NOT (within the vector length).
    #[must_use]
    pub fn not(&self) -> SignVec {
        let mut out = SignVec {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// In-place bitwise AND: `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &SignVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise OR: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or_assign(&mut self, other: &SignVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise XOR: `self ^= other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &SignVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place bitwise NOT (within the vector length).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Overwrites `self` with `other`'s bits without reallocating.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn copy_from(&mut self, other: &SignVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Fused Marsit `⊙` kernel: writes `(r AND l) OR ((r XOR l) AND v)` into
    /// `out` in one pass over the packed words, where the transient vector is
    /// `v = l XOR keep` (identical to `(l AND NOT keep) OR (NOT l AND keep)`)
    /// and `keep` is a word-parallel Bernoulli(`p_keep_received`) mask — no
    /// intermediate vectors are materialized. `out` is resized to the operand
    /// length, reusing its word buffer.
    ///
    /// **RNG stream compatibility** (frozen contract): the keep-mask words
    /// are drawn in the same word-major order and with the same per-word
    /// draw count as [`SignVec::bernoulli_uniform`], and degenerate
    /// probabilities draw nothing (`p ≤ 0` yields `local`, `p ≥ 1` yields
    /// `received` — the algebraic limits of the composed form). A shared RNG
    /// therefore ends in exactly the state the composed implementation
    /// leaves it in, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the operands' lengths differ.
    pub fn transient_combine_into(
        received: &SignVec,
        local: &SignVec,
        p_keep_received: f64,
        rng: &mut FastRng,
        out: &mut SignVec,
    ) {
        assert_eq!(received.len, local.len, "length mismatch");
        out.len = received.len;
        out.words.clear();
        out.words.resize(received.words.len(), 0);
        let q = bernoulli_fixed_point(p_keep_received);
        if q == 0 {
            out.words.copy_from_slice(&local.words);
            return;
        }
        if q == 1 << BERNOULLI_FIXED_BITS {
            out.words.copy_from_slice(&received.words);
            return;
        }
        for ((o, &r), &l) in out.words.iter_mut().zip(&received.words).zip(&local.words) {
            let keep = bernoulli_word(q, rng);
            // Tail bits of r and l are zero, so the output tail is zero
            // without masking even though `keep`'s tail lanes are arbitrary.
            *o = (r & l) | ((r ^ l) & (l ^ keep));
        }
    }

    /// In-place variant of [`SignVec::transient_combine_into`]: folds
    /// `received` into `local`, which becomes the combined aggregate. Same
    /// RNG stream contract.
    ///
    /// # Panics
    ///
    /// Panics if the operands' lengths differ.
    pub fn transient_combine_assign(
        received: &SignVec,
        local: &mut SignVec,
        p_keep_received: f64,
        rng: &mut FastRng,
    ) {
        assert_eq!(received.len, local.len, "length mismatch");
        let q = bernoulli_fixed_point(p_keep_received);
        if q == 0 {
            return; // keep local; the composed form draws nothing either
        }
        if q == 1 << BERNOULLI_FIXED_BITS {
            local.words.copy_from_slice(&received.words);
            return;
        }
        for (l, &r) in local.words.iter_mut().zip(&received.words) {
            let keep = bernoulli_word(q, rng);
            *l = (r & *l) | ((r ^ *l) & (*l ^ keep));
        }
    }

    /// [`SignVec::transient_combine_assign`] with a precomputed keep mask:
    /// applies `⊙` word-parallel using `keep_words[w]` where the in-place
    /// form would have drawn `bernoulli_word` for word `w`. With masks from
    /// [`fill_bernoulli_mask_words`] on the combine's RNG stream, the result
    /// is bit-identical to the drawing form; the split lets several
    /// independent streams be sampled interleaved before their combines run.
    ///
    /// # Panics
    ///
    /// Panics if the operands' lengths differ or the mask has fewer words
    /// than the operands.
    pub fn transient_combine_assign_masked(
        received: &SignVec,
        local: &mut SignVec,
        keep_words: &[u64],
    ) {
        assert_eq!(received.len, local.len, "length mismatch");
        assert!(
            keep_words.len() >= local.words.len(),
            "keep mask shorter than operands"
        );
        combine_words_masked(&mut local.words, &received.words, keep_words);
    }

    /// Number of positions where `self` and `other` agree.
    ///
    /// Used for the *matching rate* metric of Fig 1b.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn matching_count(&self, other: &SignVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.len - self.xor(other).count_ones()
    }

    /// Fraction of positions where `self` and `other` agree, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or empty vectors.
    #[must_use]
    pub fn matching_rate(&self, other: &SignVec) -> f64 {
        assert!(self.len > 0, "matching rate of empty vector");
        self.matching_count(other) as f64 / self.len as f64
    }

    /// Extracts bits `[start, start + count)` into a new vector.
    ///
    /// Word-aligned `start` takes a `copy_from_slice` fast path over whole
    /// words (the segmented collectives cut at 64-bit boundaries whenever
    /// `d/m` is a multiple of 64); other offsets fall back to per-bit moves.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector length.
    #[must_use]
    pub fn slice(&self, start: usize, count: usize) -> SignVec {
        assert!(start + count <= self.len, "slice out of bounds");
        let mut out = SignVec::zeros(count);
        if start.is_multiple_of(WORD_BITS) {
            let first = start / WORD_BITS;
            let nw = out.words.len();
            out.words.copy_from_slice(&self.words[first..first + nw]);
            out.mask_tail();
            return out;
        }
        for i in 0..count {
            if self.get(start + i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Allocation-free [`SignVec::slice`]: replaces `self` with bits
    /// `[start, start + count)` of `src`, reusing `self`'s word buffer.
    /// Same fast path for word-aligned `start`, same result bits.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `src`'s length.
    pub fn assign_slice_of(&mut self, src: &SignVec, start: usize, count: usize) {
        assert!(start + count <= src.len, "slice out of bounds");
        let nw = count.div_ceil(WORD_BITS);
        self.len = count;
        self.words.clear();
        if start.is_multiple_of(WORD_BITS) {
            let first = start / WORD_BITS;
            self.words.extend_from_slice(&src.words[first..first + nw]);
            self.mask_tail();
            return;
        }
        self.words.resize(nw, 0);
        for i in 0..count {
            if src.get(start + i) {
                self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
    }

    /// Overwrites bits `[start, start + other.len())` with `other`.
    ///
    /// Word-aligned `start` copies whole words (merging the final partial
    /// word with a mask); other offsets fall back to per-bit moves.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector length.
    pub fn splice(&mut self, start: usize, other: &SignVec) {
        assert!(start + other.len <= self.len, "splice out of bounds");
        if start.is_multiple_of(WORD_BITS) {
            let first = start / WORD_BITS;
            let nw = other.words.len();
            let rem = other.len % WORD_BITS;
            if rem == 0 {
                self.words[first..first + nw].copy_from_slice(&other.words);
            } else {
                self.words[first..first + nw - 1].copy_from_slice(&other.words[..nw - 1]);
                // Keep the destination bits above the spliced range.
                let mask = (1u64 << rem) - 1;
                let dst = &mut self.words[first + nw - 1];
                *dst = (*dst & !mask) | (other.words[nw - 1] & mask);
            }
            return;
        }
        for i in 0..other.len {
            self.set(start + i, other.get(i));
        }
    }

    /// Size of the packed payload in bytes (the wire size of this message).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Serializes to packed little-endian bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(self.packed_bytes());
        out
    }

    /// Deserializes from packed little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `len.div_ceil(8)`.
    #[must_use]
    pub fn from_bytes(len: usize, bytes: &[u8]) -> Self {
        assert!(bytes.len() >= len.div_ceil(8), "byte buffer too short");
        let mut v = Self::zeros(len);
        for (i, chunk) in bytes.chunks(8).enumerate().take(v.words.len()) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            v.words[i] = u64::from_le_bytes(buf);
        }
        v.mask_tail();
        v
    }

    /// Iterator over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Raw word view (low-level; unused tail bits are guaranteed zero).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    fn zip_words(&self, other: &SignVec, f: impl Fn(u64, u64) -> u64) -> SignVec {
        assert_eq!(self.len, other.len, "length mismatch");
        SignVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for SignVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignVec(len={}, ones={})", self.len, self.count_ones())
    }
}

impl fmt::Display for SignVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len.min(64) {
            write!(f, "{}", if self.get(i) { '+' } else { '-' })?;
        }
        if self.len > 64 {
            write!(f, "… ({} bits)", self.len)?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for SignVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut v = SignVec::zeros(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_counts() {
        assert_eq!(SignVec::zeros(100).count_ones(), 0);
        assert_eq!(SignVec::ones(100).count_ones(), 100);
        // Tail bits beyond len must not be counted.
        assert_eq!(SignVec::ones(65).count_ones(), 65);
    }

    #[test]
    fn from_signs_zero_is_positive() {
        let v = SignVec::from_signs(&[0.0, -0.0, -1.0]);
        assert!(v.get(0));
        assert!(v.get(1)); // -0.0 >= 0.0 in IEEE comparison
        assert!(!v.get(2));
    }

    #[test]
    fn round_trip_signs() {
        let xs = [3.0, -2.0, 0.5, -0.5, 9.0];
        let v = SignVec::from_signs(&xs);
        assert_eq!(v.to_signs(), vec![1.0, -1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn bitwise_ops_match_scalar() {
        let a: SignVec = [true, false, true, false].into_iter().collect();
        let b: SignVec = [true, true, false, false].into_iter().collect();
        let and = a.and(&b);
        let or = a.or(&b);
        let xor = a.xor(&b);
        assert_eq!(
            and.iter().collect::<Vec<_>>(),
            vec![true, false, false, false]
        );
        assert_eq!(or.iter().collect::<Vec<_>>(), vec![true, true, true, false]);
        assert_eq!(
            xor.iter().collect::<Vec<_>>(),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn not_masks_tail() {
        let v = SignVec::zeros(70);
        let n = v.not();
        assert_eq!(n.count_ones(), 70);
        // If tail masking failed, count would be 128.
    }

    #[test]
    fn matching_rate_self_is_one() {
        let v = SignVec::from_signs(&[1.0, -1.0, 1.0]);
        assert_eq!(v.matching_rate(&v), 1.0);
        assert_eq!(v.matching_rate(&v.not()), 0.0);
    }

    #[test]
    fn slice_and_splice_round_trip() {
        let mut rng = FastRng::new(7, 0);
        let v = SignVec::bernoulli_uniform(200, 0.4, &mut rng);
        let s = v.slice(37, 100);
        let mut w = SignVec::zeros(200);
        w.splice(37, &s);
        for i in 0..100 {
            assert_eq!(w.get(37 + i), v.get(37 + i));
        }
        assert_eq!(w.slice(0, 37).count_ones(), 0);
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = FastRng::new(8, 0);
        for len in [1usize, 7, 8, 63, 64, 65, 1000] {
            let v = SignVec::bernoulli_uniform(len, 0.5, &mut rng);
            let bytes = v.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            assert_eq!(SignVec::from_bytes(len, &bytes), v);
        }
    }

    #[test]
    fn bernoulli_rate_is_respected() {
        let mut rng = FastRng::new(9, 0);
        let v = SignVec::bernoulli_uniform(100_000, 0.25, &mut rng);
        let rate = v.count_ones() as f64 / v.len() as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_per_coordinate_probs() {
        let mut rng = FastRng::new(10, 0);
        let probs: Vec<f64> = (0..10_000)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let v = SignVec::bernoulli(&probs, &mut rng);
        for i in 0..10_000 {
            assert_eq!(v.get(i), i % 2 == 1);
        }
    }

    #[test]
    fn write_scaled_signs_values() {
        let v = SignVec::from_signs(&[1.0, -1.0]);
        let mut out = [0.0f32; 2];
        v.write_scaled_signs(0.5, &mut out);
        assert_eq!(out, [0.5, -0.5]);
    }

    #[test]
    fn packed_bytes_size() {
        assert_eq!(SignVec::zeros(0).packed_bytes(), 0);
        assert_eq!(SignVec::zeros(1).packed_bytes(), 1);
        assert_eq!(SignVec::zeros(8).packed_bytes(), 1);
        assert_eq!(SignVec::zeros(9).packed_bytes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v = SignVec::zeros(4);
        let _ = v.get(4);
    }

    #[test]
    fn word_parallel_bernoulli_rate_within_ci() {
        // Dyadic probabilities are realized exactly; non-dyadic ones are
        // rounded to the 2⁻³² grid. Either way the empirical rate must sit
        // within a 5σ binomial interval.
        let n = 1 << 20;
        for (stream, p) in [0.5, 0.25, 63.0 / 64.0, 1.0 / 3.0, 0.2, 0.9]
            .into_iter()
            .enumerate()
        {
            let mut rng = FastRng::new(77, stream as u64);
            let v = SignVec::bernoulli_uniform(n, p, &mut rng);
            let rate = v.count_ones() as f64 / n as f64;
            let hw = crate::stats::binomial_ci_halfwidth(p, n as u64);
            assert!((rate - p).abs() <= hw, "p={p}: rate {rate} (±{hw})");
        }
    }

    #[test]
    fn word_parallel_matches_scalar_baseline_statistically() {
        // Different streams, same distribution: both rates inside the CI.
        let n = 1 << 20;
        let p = 0.375;
        let mut r1 = FastRng::new(5, 1);
        let mut r2 = FastRng::new(5, 2);
        let fast = SignVec::bernoulli_uniform(n, p, &mut r1);
        let slow = SignVec::bernoulli_uniform_scalar(n, p, &mut r2);
        let hw = crate::stats::binomial_ci_halfwidth(p, n as u64);
        for (label, v) in [("word-parallel", &fast), ("scalar", &slow)] {
            let rate = v.count_ones() as f64 / n as f64;
            assert!((rate - p).abs() <= hw, "{label}: rate {rate} (±{hw})");
        }
    }

    #[test]
    fn bernoulli_degenerate_probabilities_are_exact_and_draw_nothing() {
        let mut rng = FastRng::new(31, 0);
        let before = rng.clone();
        assert_eq!(
            SignVec::bernoulli_uniform(70, 0.0, &mut rng).count_ones(),
            0
        );
        assert_eq!(
            SignVec::bernoulli_uniform(70, 1.0, &mut rng).count_ones(),
            70
        );
        // Degenerate p consumes no entropy at all.
        assert_eq!(rng, before);
        assert_eq!(SignVec::bernoulli_word_draws(0.0), 0);
        assert_eq!(SignVec::bernoulli_word_draws(1.0), 0);
    }

    #[test]
    fn bernoulli_word_draws_formula() {
        // Dyadic p consumes one word per significant fractional digit:
        // 0.5 = 0.1₂ → 1, 0.25 = 0.01₂ → 2, 0.75 = 0.11₂ → 2, 63/64 → 6.
        assert_eq!(SignVec::bernoulli_word_draws(0.5), 1);
        assert_eq!(SignVec::bernoulli_word_draws(0.25), 2);
        assert_eq!(SignVec::bernoulli_word_draws(0.75), 2);
        assert_eq!(SignVec::bernoulli_word_draws(63.0 / 64.0), 6);
        // Non-dyadic p uses the full 32-bit expansion (up to rounding).
        assert!(SignVec::bernoulli_word_draws(1.0 / 3.0) > 16);
    }

    /// Interleaved batch sampling is a pure scheduling change: every lane's
    /// mask words, final RNG state, and draw count must equal sequential
    /// `bernoulli_word` calls, across lane counts that exercise partial
    /// batches, full batches, multiple batches, and ragged word counts.
    #[test]
    fn interleaved_mask_batch_matches_sequential() {
        for p in [0.5, 0.25, 2.0 / 3.0, 7.0 / 8.0, 0.123] {
            let q = bernoulli_fixed_point(p);
            for lane_count in [1usize, 3, 8, 11, 17] {
                // Ragged: lane i gets 5 + (i % 3) words.
                let word_counts: Vec<usize> = (0..lane_count).map(|i| 5 + i % 3).collect();
                let mut expected_words: Vec<Vec<u64>> = Vec::new();
                let mut expected_rngs: Vec<FastRng> = Vec::new();
                for (i, &wc) in word_counts.iter().enumerate() {
                    let mut rng = FastRng::new(777, i as u64);
                    let words: Vec<u64> = (0..wc).map(|_| bernoulli_word(q, &mut rng)).collect();
                    expected_words.push(words);
                    expected_rngs.push(rng);
                }
                let mut rngs: Vec<FastRng> = (0..lane_count)
                    .map(|i| FastRng::new(777, i as u64))
                    .collect();
                let mut outs: Vec<Vec<u64>> = word_counts.iter().map(|&wc| vec![0; wc]).collect();
                let mut lanes: Vec<MaskLane<'_>> = rngs
                    .iter_mut()
                    .zip(outs.iter_mut())
                    .map(|(rng, out)| MaskLane {
                        rng,
                        out: out.as_mut_slice(),
                    })
                    .collect();
                fill_bernoulli_mask_words(p, &mut lanes);
                for i in 0..lane_count {
                    assert_eq!(outs[i], expected_words[i], "p={p} lane {i}: words differ");
                    assert_eq!(
                        rngs[i], expected_rngs[i],
                        "p={p} lane {i}: RNG state differs"
                    );
                    assert_eq!(
                        rngs[i].draws(),
                        expected_rngs[i].draws(),
                        "p={p} lane {i}: draw count differs"
                    );
                }
            }
        }
    }

    /// The masked combine applied with masks from the combine's own stream
    /// is bit-identical to the drawing combine, RNG state included.
    #[test]
    fn masked_combine_matches_drawing_combine() {
        let mut seed_rng = FastRng::new(3, 3);
        for len in [1usize, 64, 100, 192, 300] {
            for p in [0.5, 2.0 / 3.0, 0.9] {
                let recv = SignVec::bernoulli_uniform(len, 0.5, &mut seed_rng);
                let local0 = SignVec::bernoulli_uniform(len, 0.5, &mut seed_rng);
                let mut drawn = local0.clone();
                let mut draw_rng = FastRng::new(55, len as u64);
                SignVec::transient_combine_assign(&recv, &mut drawn, p, &mut draw_rng);
                let mut mask_rng = FastRng::new(55, len as u64);
                let mut masks = vec![0u64; len.div_ceil(64)];
                fill_bernoulli_mask_words(
                    p,
                    &mut [MaskLane {
                        rng: &mut mask_rng,
                        out: &mut masks,
                    }],
                );
                let mut masked = local0.clone();
                SignVec::transient_combine_assign_masked(&recv, &mut masked, &masks);
                assert_eq!(masked, drawn, "len={len} p={p}: outputs differ");
                assert_eq!(mask_rng, draw_rng, "len={len} p={p}: RNG state differs");
                assert_eq!(mask_rng.draws(), draw_rng.draws());
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate probability")]
    fn degenerate_mask_batch_panics() {
        let mut rng = FastRng::new(0, 0);
        let mut out = [0u64; 1];
        fill_bernoulli_mask_words(
            1.0,
            &mut [MaskLane {
                rng: &mut rng,
                out: &mut out,
            }],
        );
    }

    /// Regression for the tail-entropy bug: payload lengths that pack into
    /// the same number of words must leave a shared RNG in the same state,
    /// so downstream draws do not depend on whether a message was 63 or 64
    /// bits wide.
    #[test]
    fn draw_accounting_is_word_exact_across_tail_lengths() {
        let p = 0.375;
        let mut r63 = FastRng::new(123, 9);
        let mut r64 = FastRng::new(123, 9);
        let _ = SignVec::bernoulli_uniform(63, p, &mut r63);
        let _ = SignVec::bernoulli_uniform(64, p, &mut r64);
        assert_eq!(
            r63.next_u64(),
            r64.next_u64(),
            "63- and 64-bit payloads must consume identical entropy"
        );
    }

    /// Word-aligned segmentation invariance: generating a vector in two
    /// 64-aligned segments from one RNG draws the exact same bits as one
    /// full-length call — segmented collectives stay stream-compatible.
    #[test]
    fn word_aligned_segments_match_single_call() {
        let p = 0.71;
        let mut whole_rng = FastRng::new(9, 4);
        let whole = SignVec::bernoulli_uniform(192, p, &mut whole_rng);
        let mut seg_rng = FastRng::new(9, 4);
        let head = SignVec::bernoulli_uniform(64, p, &mut seg_rng);
        let tail = SignVec::bernoulli_uniform(128, p, &mut seg_rng);
        let mut joined = SignVec::zeros(192);
        joined.splice(0, &head);
        joined.splice(64, &tail);
        assert_eq!(joined, whole);
        assert_eq!(whole_rng, seg_rng);
    }

    #[test]
    fn assign_ops_match_functional_ops() {
        let mut rng = FastRng::new(61, 0);
        for len in [1usize, 63, 64, 65, 200] {
            let a = SignVec::bernoulli_uniform(len, 0.5, &mut rng);
            let b = SignVec::bernoulli_uniform(len, 0.3, &mut rng);
            let mut x = a.clone();
            x.and_assign(&b);
            assert_eq!(x, a.and(&b), "and len {len}");
            let mut x = a.clone();
            x.or_assign(&b);
            assert_eq!(x, a.or(&b), "or len {len}");
            let mut x = a.clone();
            x.xor_assign(&b);
            assert_eq!(x, a.xor(&b), "xor len {len}");
            let mut x = a.clone();
            x.not_assign();
            assert_eq!(x, a.not(), "not len {len}");
            let mut x = SignVec::zeros(len);
            x.copy_from(&b);
            assert_eq!(x, b, "copy len {len}");
        }
    }

    #[test]
    fn assign_from_signs_reuses_buffer_and_matches_from_signs() {
        let mut rng = FastRng::new(62, 0);
        let mut v = SignVec::zeros(0);
        for len in [200usize, 64, 65, 1, 130] {
            let values: Vec<f32> = (0..len).map(|_| (rng.next_f64() as f32) - 0.5).collect();
            v.assign_from_signs(&values);
            assert_eq!(v, SignVec::from_signs(&values), "len {len}");
        }
    }

    #[test]
    fn word_aligned_slice_splice_match_bitwise_fallback() {
        let mut rng = FastRng::new(63, 0);
        let v = SignVec::bernoulli_uniform(300, 0.5, &mut rng);
        for (start, count) in [
            (0usize, 300usize),
            (64, 100),
            (128, 172),
            (64, 64),
            (192, 1),
        ] {
            let fast = v.slice(start, count);
            let mut slow = SignVec::zeros(count);
            for i in 0..count {
                slow.set(i, v.get(start + i));
            }
            assert_eq!(fast, slow, "slice start={start} count={count}");

            let patch = SignVec::bernoulli_uniform(count, 0.4, &mut rng);
            let mut fast_dst = v.clone();
            fast_dst.splice(start, &patch);
            let mut slow_dst = v.clone();
            for i in 0..count {
                slow_dst.set(start + i, patch.get(i));
            }
            assert_eq!(fast_dst, slow_dst, "splice start={start} count={count}");
        }
    }

    #[test]
    fn fused_transient_combine_matches_composed_form() {
        let mut seed_rng = FastRng::new(64, 0);
        for len in [1usize, 63, 64, 65, 200, 300] {
            for p in [0.5, 0.25, 2.0 / 3.0, 0.0, 1.0, 7.0 / 8.0] {
                let r = SignVec::bernoulli_uniform(len, 0.5, &mut seed_rng);
                let l = SignVec::bernoulli_uniform(len, 0.5, &mut seed_rng);
                // Composed reference with its own RNG clone.
                let mut ref_rng = FastRng::new(99, len as u64);
                let keep = SignVec::bernoulli_uniform(len, p, &mut ref_rng);
                let v = l.and(&keep.not()).or(&l.not().and(&keep));
                let composed = r.and(&l).or(&r.xor(&l).and(&v));
                // Fused destination form.
                let mut fused_rng = FastRng::new(99, len as u64);
                let mut out = SignVec::zeros(0);
                SignVec::transient_combine_into(&r, &l, p, &mut fused_rng, &mut out);
                assert_eq!(out, composed, "into len {len} p {p}");
                assert_eq!(fused_rng, ref_rng, "rng state len {len} p {p}");
                // Fused in-place form.
                let mut local = l.clone();
                let mut assign_rng = FastRng::new(99, len as u64);
                SignVec::transient_combine_assign(&r, &mut local, p, &mut assign_rng);
                assert_eq!(local, composed, "assign len {len} p {p}");
                assert_eq!(assign_rng, ref_rng, "assign rng len {len} p {p}");
            }
        }
    }

    #[test]
    fn simd_pack_matches_scalar_reference() {
        let mut rng = FastRng::new(77, 0);
        for trial in 0..200 {
            let chunk: Vec<f32> = (0..WORD_BITS)
                .map(|_| (rng.next_f64() as f32) - 0.5)
                .collect();
            assert_eq!(
                pack_sign_word(&chunk),
                pack_sign_word_scalar(&chunk),
                "trial {trial}"
            );
        }
        // Special values in every lane position.
        let specials = [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            -f32::NAN,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
        ];
        for (rot, _) in specials.iter().enumerate() {
            let chunk: Vec<f32> = (0..WORD_BITS)
                .map(|j| specials[(j + rot) % specials.len()])
                .collect();
            assert_eq!(
                pack_sign_word(&chunk),
                pack_sign_word_scalar(&chunk),
                "rotation {rot}"
            );
        }
    }

    #[test]
    fn from_signs_matches_per_bit_reference() {
        let mut rng = FastRng::new(55, 0);
        for len in [1usize, 7, 63, 64, 65, 127, 130, 1000] {
            let values: Vec<f32> = (0..len).map(|_| (rng.next_f64() as f32) - 0.5).collect();
            let fast = SignVec::from_signs(&values);
            let mut slow = SignVec::zeros(len);
            for (i, &x) in values.iter().enumerate() {
                if x >= 0.0 {
                    slow.set(i, true);
                }
            }
            assert_eq!(fast, slow, "len {len}");
        }
    }

    #[test]
    fn from_signs_special_values() {
        let v = SignVec::from_signs(&[
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::NAN,
            -f32::NAN,
        ]);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(2));
        assert!(!v.get(3));
        // NaN packs by its sign bit.
        assert!(v.get(4));
        assert!(!v.get(5));
    }

    #[test]
    fn scaled_signs_matches_write_scaled_signs_bitwise() {
        let mut rng = FastRng::new(91, 0);
        for len in [1usize, 63, 64, 65, 200, 300] {
            let v = SignVec::bernoulli_uniform(len, 0.5, &mut rng);
            for scale in [0.01f32, -2.5, 0.0] {
                let mut written = vec![7.0f32; len];
                v.write_scaled_signs(scale, &mut written);
                let collected = v.scaled_signs(scale);
                assert_eq!(collected.len(), len);
                for (i, (a, b)) in collected.iter().zip(&written).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "len {len} scale {scale} idx {i}");
                }
            }
        }
    }

    #[test]
    fn to_signs_and_write_scaled_match_per_bit_across_word_boundaries() {
        let mut rng = FastRng::new(21, 3);
        for len in [1usize, 63, 64, 65, 200] {
            let v = SignVec::bernoulli_uniform(len, 0.5, &mut rng);
            let signs = v.to_signs();
            let mut scaled = vec![0.0f32; len];
            v.write_scaled_signs(2.5, &mut scaled);
            for i in 0..len {
                let expect = if v.get(i) { 1.0 } else { -1.0 };
                assert_eq!(signs[i], expect, "len {len} bit {i}");
                assert_eq!(scaled[i], 2.5 * expect, "len {len} bit {i}");
            }
        }
    }

    /// The leapfrogged single-stream sampler is bit-identical to the
    /// sequential digit scan: same words, same final RNG state, same draw
    /// count — across dyadic and non-dyadic probabilities and across
    /// buffer sizes spanning the sequential/leapfrog threshold and ragged
    /// block tails.
    #[test]
    fn leapfrog_fill_matches_sequential_scan() {
        for p in [0.5, 0.25, 1.0 / 3.0, 2.0 / 3.0, 0.123] {
            let q = bernoulli_fixed_point(p);
            for words in [1usize, 31, 32, 33, 40, 64, 71, 256] {
                let mut seq_rng = FastRng::new(4242, words as u64);
                let expected: Vec<u64> = (0..words)
                    .map(|_| bernoulli_word(q, &mut seq_rng))
                    .collect();
                let mut rng = FastRng::new(4242, words as u64);
                let mut out = vec![0u64; words];
                fill_bernoulli_words(q, &mut rng, &mut out);
                assert_eq!(out, expected, "p={p} words={words}: words differ");
                assert_eq!(rng, seq_rng, "p={p} words={words}: RNG state differs");
                assert_eq!(
                    rng.draws(),
                    seq_rng.draws(),
                    "p={p} words={words}: draw count differs"
                );
            }
        }
    }

    /// `fill_bernoulli_masks_indexed` writes the same words to its windows
    /// and leaves its generators in the same states as the borrow-based
    /// batch sampler on the same streams.
    #[test]
    fn indexed_mask_fill_matches_lane_fill() {
        for p in [0.5, 1.0 / 3.0, 0.123] {
            for lane_count in [1usize, 3, 8, 11] {
                let word_counts: Vec<usize> = (0..lane_count).map(|i| 5 + i % 3).collect();
                // Reference: the MaskLane-based sampler.
                let mut ref_rngs: Vec<FastRng> = (0..lane_count)
                    .map(|i| FastRng::new(91, i as u64))
                    .collect();
                let mut ref_outs: Vec<Vec<u64>> =
                    word_counts.iter().map(|&wc| vec![0; wc]).collect();
                let mut lanes: Vec<MaskLane<'_>> = ref_rngs
                    .iter_mut()
                    .zip(ref_outs.iter_mut())
                    .map(|(rng, out)| MaskLane {
                        rng,
                        out: out.as_mut_slice(),
                    })
                    .collect();
                fill_bernoulli_mask_words(p, &mut lanes);
                // Indexed: same streams, one flat buffer with gaps between
                // windows to catch out-of-window writes.
                let mut rngs: Vec<FastRng> = (0..lane_count)
                    .map(|i| FastRng::new(91, i as u64))
                    .collect();
                let mut windows = Vec::new();
                let mut cursor = 1usize;
                for &wc in &word_counts {
                    windows.push((cursor, wc));
                    cursor += wc + 1;
                }
                let mut flat = vec![u64::MAX; cursor];
                fill_bernoulli_masks_indexed(p, &mut rngs, &mut flat, &windows);
                for (i, (&(start, len), expected)) in windows.iter().zip(&ref_outs).enumerate() {
                    assert_eq!(
                        &flat[start..start + len],
                        expected.as_slice(),
                        "p={p} lane {i}: words differ"
                    );
                    assert_eq!(rngs[i], ref_rngs[i], "p={p} lane {i}: state differs");
                    assert_eq!(rngs[i].draws(), ref_rngs[i].draws());
                }
                // Gap words between windows must be untouched.
                for (i, &(start, _)) in windows.iter().enumerate() {
                    assert_eq!(flat[start - 1], u64::MAX, "guard before lane {i} clobbered");
                }
                assert_eq!(flat[cursor - 1], u64::MAX, "trailing guard clobbered");
            }
        }
    }

    #[test]
    fn assign_slice_of_matches_slice() {
        let mut rng = FastRng::new(17, 5);
        let v = SignVec::bernoulli_uniform(300, 0.4, &mut rng);
        let mut scratch = SignVec::zeros(1);
        for (start, count) in [(0usize, 300usize), (64, 128), (64, 100), (37, 99), (299, 1)] {
            scratch.assign_slice_of(&v, start, count);
            assert_eq!(
                scratch,
                v.slice(start, count),
                "start={start} count={count}"
            );
        }
    }

    #[test]
    fn scaled_sign_lut_matches_branchless_rebuild() {
        let mut rng = FastRng::new(23, 9);
        for len in [1usize, 63, 64, 65, 200] {
            let v = SignVec::bernoulli_uniform(len, 0.5, &mut rng);
            for scale in [1.0f32, 0.01, 2.5] {
                let lut = ScaledSignLut::new(scale);
                let mut branchless = vec![0.0f32; len];
                let mut via_lut = vec![0.0f32; len];
                v.write_scaled_signs(scale, &mut branchless);
                v.write_scaled_signs_lut(&lut, &mut via_lut);
                for (a, b) in branchless.iter().zip(&via_lut) {
                    assert_eq!(a.to_bits(), b.to_bits(), "len {len} scale {scale}");
                }
            }
        }
    }
}
