//! Bit-packed sign vectors.
//!
//! A [`SignVec`] stores one bit per gradient coordinate: `1` encodes a
//! non-negative sign (`+1`) and `0` a negative sign (`−1`). This is the wire
//! format of every one-bit message in the workspace — Marsit's `⊙` operator
//! (word-parallel `AND`/`OR`/`XOR`), signSGD's majority vote, and the bit
//! accounting used by the experiment harness all operate on it.
//!
//! Bits are packed little-endian into `u64` words; unused high bits of the
//! last word are kept at zero as an invariant so that word-level operations
//! and popcounts need no masking on reads.

use std::fmt;

use crate::rng::FastRng;

const WORD_BITS: usize = 64;

/// A fixed-length, bit-packed vector of signs.
///
/// # Examples
///
/// ```
/// use marsit_tensor::SignVec;
///
/// let v = SignVec::from_signs(&[1.5, -0.2, 0.0, -7.0]);
/// assert_eq!(v.to_signs(), vec![1.0, -1.0, 1.0, -1.0]);
/// assert_eq!(v.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SignVec {
    len: usize,
    words: Vec<u64>,
}

impl SignVec {
    /// Creates a vector of `len` bits, all zero (all-negative signs).
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a vector of `len` bits, all one (all-positive signs).
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            len,
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
        };
        v.mask_tail();
        v
    }

    /// Packs the signs of `values`: bit = 1 iff `value >= 0`.
    ///
    /// Zero is treated as positive, matching `sgn` conventions in signSGD
    /// implementations (a zero gradient coordinate transmits `+1`).
    #[must_use]
    pub fn from_signs(values: &[f32]) -> Self {
        let mut v = Self::zeros(values.len());
        for (i, &x) in values.iter().enumerate() {
            if x >= 0.0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a vector whose bit `j` is drawn Bernoulli(`probs[j]`).
    ///
    /// This is the *transient vector* generator of Marsit Eq. (2) in its most
    /// general form; [`SignVec::bernoulli_uniform`] covers the common case of
    /// one shared probability.
    #[must_use]
    pub fn bernoulli(probs: &[f64], rng: &mut FastRng) -> Self {
        let mut v = Self::zeros(probs.len());
        for (i, &p) in probs.iter().enumerate() {
            if rng.bernoulli(p) {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a vector of `len` i.i.d. Bernoulli(`p`) bits.
    #[must_use]
    pub fn bernoulli_uniform(len: usize, p: f64, rng: &mut FastRng) -> Self {
        let mut v = Self::zeros(len);
        for word in &mut v.words {
            let mut w = 0u64;
            for b in 0..WORD_BITS {
                if rng.bernoulli(p) {
                    w |= 1 << b;
                }
            }
            *word = w;
        }
        v.mask_tail();
        v
    }

    /// Number of bits in the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Expands back to a `±1.0` vector.
    #[must_use]
    pub fn to_signs(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| if self.get(i) { 1.0 } else { -1.0 })
            .collect()
    }

    /// Writes `±scale` into `out[j]` for each bit `j`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn write_scaled_signs(&self, scale: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = if self.get(i) { scale } else { -scale };
        }
    }

    /// Word-parallel bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn and(&self, other: &SignVec) -> SignVec {
        self.zip_words(other, |a, b| a & b)
    }

    /// Word-parallel bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn or(&self, other: &SignVec) -> SignVec {
        self.zip_words(other, |a, b| a | b)
    }

    /// Word-parallel bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn xor(&self, other: &SignVec) -> SignVec {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Bitwise NOT (within the vector length).
    #[must_use]
    pub fn not(&self) -> SignVec {
        let mut out = SignVec {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// Number of positions where `self` and `other` agree.
    ///
    /// Used for the *matching rate* metric of Fig 1b.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn matching_count(&self, other: &SignVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.len - self.xor(other).count_ones()
    }

    /// Fraction of positions where `self` and `other` agree, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or empty vectors.
    #[must_use]
    pub fn matching_rate(&self, other: &SignVec) -> f64 {
        assert!(self.len > 0, "matching rate of empty vector");
        self.matching_count(other) as f64 / self.len as f64
    }

    /// Extracts bits `[start, start + count)` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector length.
    #[must_use]
    pub fn slice(&self, start: usize, count: usize) -> SignVec {
        assert!(start + count <= self.len, "slice out of bounds");
        let mut out = SignVec::zeros(count);
        for i in 0..count {
            if self.get(start + i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Overwrites bits `[start, start + other.len())` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector length.
    pub fn splice(&mut self, start: usize, other: &SignVec) {
        assert!(start + other.len <= self.len, "splice out of bounds");
        for i in 0..other.len {
            self.set(start + i, other.get(i));
        }
    }

    /// Size of the packed payload in bytes (the wire size of this message).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Serializes to packed little-endian bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(self.packed_bytes());
        out
    }

    /// Deserializes from packed little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `len.div_ceil(8)`.
    #[must_use]
    pub fn from_bytes(len: usize, bytes: &[u8]) -> Self {
        assert!(bytes.len() >= len.div_ceil(8), "byte buffer too short");
        let mut v = Self::zeros(len);
        for (i, chunk) in bytes.chunks(8).enumerate().take(v.words.len()) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            v.words[i] = u64::from_le_bytes(buf);
        }
        v.mask_tail();
        v
    }

    /// Iterator over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Raw word view (low-level; unused tail bits are guaranteed zero).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    fn zip_words(&self, other: &SignVec, f: impl Fn(u64, u64) -> u64) -> SignVec {
        assert_eq!(self.len, other.len, "length mismatch");
        SignVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for SignVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignVec(len={}, ones={})", self.len, self.count_ones())
    }
}

impl fmt::Display for SignVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len.min(64) {
            write!(f, "{}", if self.get(i) { '+' } else { '-' })?;
        }
        if self.len > 64 {
            write!(f, "… ({} bits)", self.len)?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for SignVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut v = SignVec::zeros(bits.len());
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_counts() {
        assert_eq!(SignVec::zeros(100).count_ones(), 0);
        assert_eq!(SignVec::ones(100).count_ones(), 100);
        // Tail bits beyond len must not be counted.
        assert_eq!(SignVec::ones(65).count_ones(), 65);
    }

    #[test]
    fn from_signs_zero_is_positive() {
        let v = SignVec::from_signs(&[0.0, -0.0, -1.0]);
        assert!(v.get(0));
        assert!(v.get(1)); // -0.0 >= 0.0 in IEEE comparison
        assert!(!v.get(2));
    }

    #[test]
    fn round_trip_signs() {
        let xs = [3.0, -2.0, 0.5, -0.5, 9.0];
        let v = SignVec::from_signs(&xs);
        assert_eq!(v.to_signs(), vec![1.0, -1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn bitwise_ops_match_scalar() {
        let a: SignVec = [true, false, true, false].into_iter().collect();
        let b: SignVec = [true, true, false, false].into_iter().collect();
        let and = a.and(&b);
        let or = a.or(&b);
        let xor = a.xor(&b);
        assert_eq!(
            and.iter().collect::<Vec<_>>(),
            vec![true, false, false, false]
        );
        assert_eq!(or.iter().collect::<Vec<_>>(), vec![true, true, true, false]);
        assert_eq!(
            xor.iter().collect::<Vec<_>>(),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn not_masks_tail() {
        let v = SignVec::zeros(70);
        let n = v.not();
        assert_eq!(n.count_ones(), 70);
        // If tail masking failed, count would be 128.
    }

    #[test]
    fn matching_rate_self_is_one() {
        let v = SignVec::from_signs(&[1.0, -1.0, 1.0]);
        assert_eq!(v.matching_rate(&v), 1.0);
        assert_eq!(v.matching_rate(&v.not()), 0.0);
    }

    #[test]
    fn slice_and_splice_round_trip() {
        let mut rng = FastRng::new(7, 0);
        let v = SignVec::bernoulli_uniform(200, 0.4, &mut rng);
        let s = v.slice(37, 100);
        let mut w = SignVec::zeros(200);
        w.splice(37, &s);
        for i in 0..100 {
            assert_eq!(w.get(37 + i), v.get(37 + i));
        }
        assert_eq!(w.slice(0, 37).count_ones(), 0);
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = FastRng::new(8, 0);
        for len in [1usize, 7, 8, 63, 64, 65, 1000] {
            let v = SignVec::bernoulli_uniform(len, 0.5, &mut rng);
            let bytes = v.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            assert_eq!(SignVec::from_bytes(len, &bytes), v);
        }
    }

    #[test]
    fn bernoulli_rate_is_respected() {
        let mut rng = FastRng::new(9, 0);
        let v = SignVec::bernoulli_uniform(100_000, 0.25, &mut rng);
        let rate = v.count_ones() as f64 / v.len() as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_per_coordinate_probs() {
        let mut rng = FastRng::new(10, 0);
        let probs: Vec<f64> = (0..10_000)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let v = SignVec::bernoulli(&probs, &mut rng);
        for i in 0..10_000 {
            assert_eq!(v.get(i), i % 2 == 1);
        }
    }

    #[test]
    fn write_scaled_signs_values() {
        let v = SignVec::from_signs(&[1.0, -1.0]);
        let mut out = [0.0f32; 2];
        v.write_scaled_signs(0.5, &mut out);
        assert_eq!(out, [0.5, -0.5]);
    }

    #[test]
    fn packed_bytes_size() {
        assert_eq!(SignVec::zeros(0).packed_bytes(), 0);
        assert_eq!(SignVec::zeros(1).packed_bytes(), 1);
        assert_eq!(SignVec::zeros(8).packed_bytes(), 1);
        assert_eq!(SignVec::zeros(9).packed_bytes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v = SignVec::zeros(4);
        let _ = v.get(4);
    }
}
