//! Dense tensors, bit-packed sign vectors, and deterministic randomness —
//! the numeric substrate of the Marsit (DAC 2022) reproduction.
//!
//! The paper trains neural networks with PyTorch on GPUs; this workspace
//! rebuilds the minimum numeric stack required to exercise the same
//! synchronization code paths on a CPU:
//!
//! - [`Tensor`]: a row-major `f32` matrix with the linear algebra needed for
//!   exact backpropagation (matmul and transposed variants, elementwise maps,
//!   reductions).
//! - [`SignVec`]: a bit-packed sign vector — the one-bit wire format of
//!   Marsit's `⊙` operator and of every signSGD-family compressor.
//! - [`rng`]: seed-splitting and a fast Bernoulli generator so that all
//!   stochastic compression is reproducible bit-for-bit.
//! - [`stats`]: norms and online moments used by the experiment harness.
//!
//! # Examples
//!
//! ```
//! use marsit_tensor::{SignVec, Tensor};
//! use marsit_tensor::rng::FastRng;
//!
//! let mut rng = FastRng::new(42, 0);
//! let grad = Tensor::gaussian(1, 1000, 1.0, &mut rng);
//! let signs = SignVec::from_signs(grad.as_slice());
//! // One bit per coordinate: 1000 bits -> 125 bytes on the wire.
//! assert_eq!(signs.packed_bytes(), 125);
//! ```

pub mod rng;
pub mod signvec;
pub mod stats;
pub mod tensor;

pub use signvec::{
    fill_bernoulli_mask_words, fill_bernoulli_masks_indexed, MaskLane, ScaledSignLut, SignVec,
};
pub use tensor::{ShapeError, Tensor};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::rng::FastRng;
    use crate::SignVec;

    proptest! {
        /// AND/OR/XOR on packed words agree with per-bit evaluation.
        #[test]
        fn bitwise_ops_agree_with_scalar(bits_a in prop::collection::vec(any::<bool>(), 1..300),
                                         bits_b_seed in any::<u64>()) {
            let n = bits_a.len();
            let mut rng = FastRng::new(bits_b_seed, 0);
            let bits_b: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
            let a: SignVec = bits_a.iter().copied().collect();
            let b: SignVec = bits_b.iter().copied().collect();
            for i in 0..n {
                prop_assert_eq!(a.and(&b).get(i), bits_a[i] & bits_b[i]);
                prop_assert_eq!(a.or(&b).get(i), bits_a[i] | bits_b[i]);
                prop_assert_eq!(a.xor(&b).get(i), bits_a[i] ^ bits_b[i]);
                prop_assert_eq!(a.not().get(i), !bits_a[i]);
            }
        }

        /// Serialization round-trips for arbitrary lengths.
        #[test]
        fn signvec_bytes_round_trip(bits in prop::collection::vec(any::<bool>(), 0..500)) {
            let v: SignVec = bits.iter().copied().collect();
            let restored = SignVec::from_bytes(v.len(), &v.to_bytes());
            prop_assert_eq!(restored, v);
        }

        /// matching_count is symmetric and bounded by len.
        #[test]
        fn matching_count_symmetric(bits in prop::collection::vec(any::<(bool, bool)>(), 1..300)) {
            let a: SignVec = bits.iter().map(|&(x, _)| x).collect();
            let b: SignVec = bits.iter().map(|&(_, y)| y).collect();
            prop_assert_eq!(a.matching_count(&b), b.matching_count(&a));
            prop_assert!(a.matching_count(&b) <= a.len());
            let expected = bits.iter().filter(|&&(x, y)| x == y).count();
            prop_assert_eq!(a.matching_count(&b), expected);
        }

        /// slice/splice are mutually inverse.
        #[test]
        fn slice_splice_inverse(bits in prop::collection::vec(any::<bool>(), 2..300),
                                cut in 0usize..100) {
            let v: SignVec = bits.iter().copied().collect();
            let start = cut % bits.len();
            let count = (bits.len() - start).min(bits.len() / 2 + 1);
            let part = v.slice(start, count);
            let mut rebuilt = v.clone();
            rebuilt.splice(start, &part);
            prop_assert_eq!(rebuilt, v);
        }
    }
}
