//! Log2-bucket histograms with deterministic quantiles.
//!
//! Buckets are keyed by the floating-point exponent (`floor(log2 v)`,
//! extracted from the bit pattern — no libm, so bucketing is identical on
//! every platform). Count, sum, min, and max are exact; quantiles are
//! bucket-resolution upper bounds clamped to the exact max, which makes them
//! deterministic and monotone in `q`.

use std::collections::BTreeMap;

use crate::json;

/// A log2-bucket histogram of non-negative samples.
///
/// ```
/// use marsit_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000 {
///     h.observe(f64::from(v));
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000.0);
/// assert!(h.quantile(0.5) >= 500.0 && h.quantile(0.5) <= 1000.0);
/// assert!(h.quantile(0.99) >= h.quantile(0.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Samples with value ≤ 0 (there is no log2 bucket for them).
    zeros: u64,
    /// `floor(log2 v) -> count` for samples with value > 0.
    buckets: BTreeMap<i32, u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Exponent of the power-of-two bucket containing `v` (`v > 0`).
/// Subnormals all land in the lowest normal bucket, −1023.
fn bucket_exponent(v: f64) -> i32 {
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        -1023
    } else {
        biased - 1023
    }
}

/// 2^e as `f64`, saturating to 0 / ∞ outside the normal range.
fn pow2(e: i32) -> f64 {
    if e < -1022 {
        0.0
    } else if e > 1023 {
        f64::INFINITY
    } else {
        f64::from_bits(((e + 1023) as u64) << 52)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            zeros: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// Record one sample. Non-finite samples are ignored; non-positive ones
    /// land in a dedicated zero bucket.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v > 0.0 {
            *self.buckets.entry(bucket_exponent(v)).or_default() += 1;
        } else {
            self.zeros += 1;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of all samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Deterministic quantile estimate for `q ∈ [0, 1]`: the upper edge of
    /// the bucket holding the ⌈q·count⌉-th smallest sample, clamped to the
    /// exact extremes. Within a factor of 2 of the true quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.zeros;
        if cum >= target {
            return self.min;
        }
        for (&e, &n) in &self.buckets {
            cum += n;
            if cum >= target {
                return pow2(e + 1).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Iterate `(bucket_exponent, count)` pairs in ascending exponent order.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&e, &n)| (e, n))
    }

    /// Samples that fell in the non-positive bucket.
    pub fn zero_count(&self) -> u64 {
        self.zeros
    }

    /// Append this histogram as a JSON object (count, sum, extremes, p50/95/99,
    /// and `[exponent, count]` bucket pairs) to `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        json::write_f64(out, self.sum);
        out.push_str(",\"min\":");
        json::write_f64(out, self.min());
        out.push_str(",\"max\":");
        json::write_f64(out, self.max());
        out.push_str(",\"mean\":");
        json::write_f64(out, self.mean());
        out.push_str(",\"p50\":");
        json::write_f64(out, self.quantile(0.50));
        out.push_str(",\"p95\":");
        json::write_f64(out, self.quantile(0.95));
        out.push_str(",\"p99\":");
        json::write_f64(out, self.quantile(0.99));
        out.push_str(",\"zeros\":");
        out.push_str(&self.zeros.to_string());
        out.push_str(",\"buckets\":[");
        for (i, (e, n)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{e},{n}]"));
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_aggregates() {
        let mut h = Histogram::new();
        for v in [0.5, 1.0, 2.0, 4.0, 0.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 7.5);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.mean(), 1.5);
        assert_eq!(h.zero_count(), 1);
    }

    #[test]
    fn bucket_exponents_match_log2() {
        for (v, e) in [
            (1.0, 0),
            (1.5, 0),
            (2.0, 1),
            (3.99, 1),
            (0.5, -1),
            (0.26, -2),
        ] {
            assert_eq!(bucket_exponent(v), e, "v={v}");
        }
        assert_eq!(bucket_exponent(f64::MIN_POSITIVE / 2.0), -1023); // subnormal
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_truth() {
        let mut h = Histogram::new();
        for v in 1..=1024 {
            h.observe(f64::from(v));
        }
        let mut prev = 0.0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(est >= prev, "quantile not monotone at q={q}");
            prev = est;
            // log2 buckets: the estimate is within 2x above the true quantile.
            let truth = (q * 1024.0).max(1.0);
            assert!(est >= truth - 1.0, "q={q}: {est} < {truth}");
            assert!(est <= truth * 2.0 + 1.0, "q={q}: {est} > 2*{truth}");
        }
        assert_eq!(h.quantile(1.0), 1024.0); // exact max
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        let mut s = String::new();
        h.write_json(&mut s);
        assert!(crate::json::parse(&s).is_ok(), "{s}");
    }

    #[test]
    fn ignores_non_finite() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }
}
