//! Run-report reconstruction from recorded events.
//!
//! The reconstruction guarantee: grouping `hop` events by their `seq` field
//! (in emission order within each group) rebuilds exactly the step structure
//! the collectives put in their `Trace` — same per-step byte lists, same
//! order — so [`RunAnalysis::total_bytes`] equals `Trace::total_bytes` and
//! [`schedule_time`] (the same α–β arithmetic as `cost::schedule_time`, in
//! the same fold order) equals `Trace::time` bit-for-bit.

use std::collections::BTreeMap;

use crate::Event;

/// Traffic aggregated over one directed link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStat {
    /// Sending worker (global id).
    pub send: usize,
    /// Receiving worker (global id).
    pub recv: usize,
    /// Total bytes over all attempts.
    pub bytes: u64,
    /// Wire attempts (including retransmits).
    pub attempts: u64,
    /// Attempts with `attempt > 1`.
    pub retransmits: u64,
    /// Attempts that did not deliver.
    pub undelivered: u64,
}

/// Simulated-time totals accumulated from `round` events.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTotals {
    /// Total compute seconds.
    pub compute_s: f64,
    /// Total compression/codec seconds.
    pub compression_s: f64,
    /// Total communication seconds.
    pub communication_s: f64,
    /// Number of `round` events seen.
    pub rounds: u64,
}

impl PhaseTotals {
    /// Sum of the three phases.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.compression_s + self.communication_s
    }
}

/// Fault counters accumulated from `marsit_sync` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTotals {
    /// Retransmitted transfers.
    pub retransmits: u64,
    /// Best-effort transfers abandoned after retry exhaustion.
    pub dropped: u64,
    /// Transfers corrupted then repaired by checksum retry.
    pub corrupted: u64,
    /// Crash repairs performed.
    pub repairs: u64,
    /// Workers observed crashed (max over events).
    pub crashed: u64,
}

/// Everything reconstructed from one event log.
#[derive(Debug, Clone, Default)]
pub struct RunAnalysis {
    /// The `run_meta` event, if the log starts with one.
    pub meta: Option<Event>,
    /// Expanded wire steps rebuilt from `hop` events, `seq`-ascending; equal
    /// to the concatenated `Trace::steps()` of every instrumented collective
    /// the run executed.
    pub steps: Vec<Vec<usize>>,
    /// Total bytes over all hop events (== rebuilt trace total).
    pub total_hop_bytes: u64,
    /// Number of `hop` events.
    pub hop_events: u64,
    /// Hop attempts with `attempt > 1`.
    pub retransmits: u64,
    /// Hop attempts that did not deliver.
    pub undelivered: u64,
    /// Per-directed-link aggregates, sorted by (send, recv).
    pub links: Vec<LinkStat>,
    /// Phase totals from `round` events.
    pub phases: PhaseTotals,
    /// Fault totals from `marsit_sync` events.
    pub faults: FaultTotals,
    /// Simulated seconds lost to retries (from `marsit_sync` events).
    pub retry_extra_s: f64,
    /// Number of `marsit_sync` events.
    pub sync_events: u64,
}

impl RunAnalysis {
    /// Total bytes of the rebuilt step structure.
    pub fn total_bytes(&self) -> u64 {
        self.total_hop_bytes
    }

    /// Critical-path time of the rebuilt steps under an α–β link.
    pub fn schedule_time(&self, alpha_s: f64, beta_bytes_per_s: f64) -> f64 {
        schedule_time(alpha_s, beta_bytes_per_s, &self.steps)
    }

    /// `(alpha_s, beta_bytes_per_s)` from the `run_meta` event, if present.
    pub fn meta_alpha_beta(&self) -> Option<(f64, f64)> {
        let meta = self.meta.as_ref()?;
        Some((
            meta.f64_field("alpha_s")?,
            meta.f64_field("beta_bytes_per_s")?,
        ))
    }
}

/// Critical-path time of `steps` under an α–β link: for each non-empty step,
/// `alpha + max_bytes / beta`, summed in step order — the identical
/// arithmetic and fold order as `marsit_simnet::cost::schedule_time`, so the
/// result matches `Trace::time` bit-for-bit on identical steps.
pub fn schedule_time(alpha_s: f64, beta_bytes_per_s: f64, steps: &[Vec<usize>]) -> f64 {
    steps
        .iter()
        .filter(|step| !step.is_empty())
        .map(|step| {
            let max = step.iter().copied().max().unwrap_or(0);
            alpha_s + max as f64 / beta_bytes_per_s
        })
        .sum()
}

/// Parse a JSONL event log (one event per non-empty line).
///
/// # Errors
///
/// Returns the first line's parse error, prefixed with its 1-based line
/// number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| Event::parse_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Reconstruct a [`RunAnalysis`] from parsed events.
///
/// # Errors
///
/// Returns a message if a `hop` event is missing a required field.
pub fn analyze(events: &[Event]) -> Result<RunAnalysis, String> {
    let mut out = RunAnalysis::default();
    let mut steps: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut links: BTreeMap<(usize, usize), LinkStat> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.name.as_str() {
            "run_meta" if out.meta.is_none() => {
                out.meta = Some(ev.clone());
            }
            "hop" => {
                let field = |key: &str| {
                    ev.u64_field(key)
                        .ok_or_else(|| format!("event {i}: hop missing field {key:?}"))
                };
                let seq = field("seq")?;
                let send = field("send")? as usize;
                let recv = field("recv")? as usize;
                let bytes = field("bytes")?;
                let attempt = field("attempt")?;
                let delivered = ev
                    .bool_field("delivered")
                    .ok_or_else(|| format!("event {i}: hop missing field \"delivered\""))?;
                steps.entry(seq).or_default().push(bytes as usize);
                out.total_hop_bytes += bytes;
                out.hop_events += 1;
                let link = links.entry((send, recv)).or_insert(LinkStat {
                    send,
                    recv,
                    bytes: 0,
                    attempts: 0,
                    retransmits: 0,
                    undelivered: 0,
                });
                link.bytes += bytes;
                link.attempts += 1;
                if attempt > 1 {
                    link.retransmits += 1;
                    out.retransmits += 1;
                }
                if !delivered {
                    link.undelivered += 1;
                    out.undelivered += 1;
                }
            }
            "round" => {
                out.phases.rounds += 1;
                out.phases.compute_s += ev.f64_field("compute_s").unwrap_or(0.0);
                out.phases.compression_s += ev.f64_field("compression_s").unwrap_or(0.0);
                out.phases.communication_s += ev.f64_field("communication_s").unwrap_or(0.0);
            }
            "marsit_sync" => {
                out.sync_events += 1;
                out.faults.retransmits += ev.u64_field("retransmits").unwrap_or(0);
                out.faults.dropped += ev.u64_field("dropped").unwrap_or(0);
                out.faults.corrupted += ev.u64_field("corrupted").unwrap_or(0);
                out.faults.repairs += ev.u64_field("repairs").unwrap_or(0);
                out.faults.crashed = out.faults.crashed.max(ev.u64_field("crashed").unwrap_or(0));
                out.retry_extra_s += ev.f64_field("retry_extra_s").unwrap_or(0.0);
            }
            _ => {}
        }
    }
    out.steps = steps.into_values().collect();
    out.links = links.into_values().collect();
    Ok(out)
}

/// Schema validation for an event log. Returns all problems found (empty =
/// valid). Checks: parseable structure is assumed (use [`parse_jsonl`]
/// first); the log is non-empty and starts with a `run_meta` event;
/// timestamps are monotone non-decreasing; `hop` events carry sane required
/// fields; hop `seq` values are contiguous from 0.
pub fn validate(events: &[Event]) -> Vec<String> {
    let mut errors = Vec::new();
    if events.is_empty() {
        errors.push("event log is empty".to_string());
        return errors;
    }
    if events[0].name != "run_meta" {
        errors.push(format!(
            "first event is {:?}, expected \"run_meta\"",
            events[0].name
        ));
    } else if events[0].str_field("schema") != Some("marsit-telemetry/1") {
        errors.push("run_meta is missing schema \"marsit-telemetry/1\"".to_string());
    }
    let mut last_t = f64::NEG_INFINITY;
    let mut seqs: Vec<u64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if !ev.time_s.is_finite() || ev.time_s < last_t {
            errors.push(format!(
                "event {i} ({}): timestamp {} not monotone (previous {last_t})",
                ev.name, ev.time_s
            ));
        }
        last_t = last_t.max(ev.time_s);
        if ev.name == "hop" {
            for key in [
                "seq", "step", "send", "recv", "seg", "elems", "bytes", "attempt",
            ] {
                if ev.u64_field(key).is_none() {
                    errors.push(format!("event {i}: hop missing numeric field {key:?}"));
                }
            }
            if ev.bool_field("delivered").is_none() {
                errors.push(format!("event {i}: hop missing bool field \"delivered\""));
            }
            match ev.str_field("phase") {
                Some("reduce" | "gather") => {}
                other => errors.push(format!("event {i}: hop has bad phase {other:?}")),
            }
            if ev.u64_field("bytes") == Some(0) {
                errors.push(format!("event {i}: hop carries zero bytes"));
            }
            if ev.u64_field("attempt") == Some(0) {
                errors.push(format!("event {i}: hop attempt must be 1-based"));
            }
            if let (Some(s), Some(r)) = (ev.u64_field("send"), ev.u64_field("recv")) {
                if s == r {
                    errors.push(format!("event {i}: hop sends worker {s} to itself"));
                }
            }
            if let Some(seq) = ev.u64_field("seq") {
                seqs.push(seq);
            }
            // The transport tag is optional (absent on legacy logs), but a
            // present tag must name a known backend and clock kind, together.
            match (ev.str_field("backend"), ev.str_field("clock")) {
                (None, None) => {}
                (Some("simulator"), Some("simulated"))
                | (Some("threaded" | "process"), Some("real")) => {}
                (backend, clock) => errors.push(format!(
                    "event {i}: bad transport tag backend={backend:?} clock={clock:?}"
                )),
            }
        }
    }
    seqs.sort_unstable();
    seqs.dedup();
    for (expect, &got) in seqs.iter().enumerate() {
        if got != expect as u64 {
            errors.push(format!(
                "hop seq values are not contiguous: expected {expect}, found {got}"
            ));
            break;
        }
    }
    errors
}

/// The wall-clock field names stripped by [`strip_wall_clock`]. Everything
/// else in an event is part of the deterministic schema.
pub const WALL_CLOCK_FIELDS: [&str; 3] = ["wall_ns", "send_ns", "recv_ns"];

/// Remove the wall-clock timing fields from every event, in place. After
/// stripping, two same-seed runs' logs are byte-comparable again — this is
/// what `validate`-mode comparisons and the trace-merge determinism test
/// apply before diffing.
pub fn strip_wall_clock(events: &mut [Event]) {
    for ev in events {
        ev.fields
            .retain(|(k, _)| !WALL_CLOCK_FIELDS.contains(&k.as_str()));
    }
}

/// Merge per-rank event logs into one causally-ordered run trace.
///
/// The merge key is the trace's own causal structure, not arrival order:
/// `run_meta` events first (deduplicated when byte-identical), then `hop`
/// events by absolute expanded-step `seq` (the same key that pins
/// `Trace::steps`), then everything else; ties break on the simulated
/// timestamp's bit pattern and finally on the event's *wall-clock-stripped*
/// rendered bytes. Because no key consults input order or wall-clock
/// values, merging the same logs in any file order yields the identical
/// event sequence — the determinism contract the trace-merge test pins.
pub fn merge_logs(logs: &[Vec<Event>]) -> Vec<Event> {
    fn class(ev: &Event) -> u8 {
        match ev.name.as_str() {
            "run_meta" => 0,
            "hop" => 1,
            _ => 2,
        }
    }
    fn stripped_line(ev: &Event) -> String {
        let mut copy = ev.clone();
        copy.fields
            .retain(|(k, _)| !WALL_CLOCK_FIELDS.contains(&k.as_str()));
        let mut s = String::new();
        copy.write_jsonl(&mut s);
        s
    }
    let mut keyed: Vec<(u8, u64, u64, String, &Event)> = logs
        .iter()
        .flatten()
        .map(|ev| {
            (
                class(ev),
                ev.u64_field("seq").unwrap_or(u64::MAX),
                ev.time_s.to_bits(),
                stripped_line(ev),
                ev,
            )
        })
        .collect();
    keyed.sort_by(|a, b| (a.0, a.1, a.2, &a.3).cmp(&(b.0, b.1, b.2, &b.3)));
    let mut out: Vec<Event> = Vec::with_capacity(keyed.len());
    let mut last_meta_line: Option<String> = None;
    for (cls, _, _, line, ev) in keyed {
        if cls == 0 {
            // Every rank emits the same run_meta; keep one copy per distinct
            // rendering (ranks that disagree are preserved, not hidden).
            if last_meta_line.as_deref() == Some(line.as_str()) {
                continue;
            }
            last_meta_line = Some(line);
        }
        out.push(ev.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{scoped, Hop, HopRecorder};
    use crate::{Telemetry, Value};

    fn sample_log() -> Telemetry {
        let t = Telemetry::recording();
        t.emit(
            "run_meta",
            vec![
                ("schema", Value::Str("marsit-telemetry/1".to_string())),
                ("seed", Value::U64(7)),
                ("alpha_s", Value::F64(1e-4)),
                ("beta_bytes_per_s", Value::F64(1e9)),
            ],
        );
        scoped(&t, || {
            let mut rec = HopRecorder::begin();
            for (step, send, bytes, attempt, delivered) in [
                (0, 0, 16, 1, false),
                (1, 0, 16, 2, true),
                (0, 1, 8, 1, true),
            ] {
                rec.hop(&Hop {
                    expanded_step: step,
                    step: 0,
                    phase: "reduce",
                    sender: send,
                    receiver: (send + 1) % 3,
                    segment: 0,
                    elems: 4,
                    bytes,
                    attempt,
                    delivered,
                });
            }
        });
        t
    }

    #[test]
    fn rebuilds_steps_and_totals() {
        let t = sample_log();
        let events = parse_jsonl(&t.events_jsonl()).unwrap();
        let analysis = analyze(&events).unwrap();
        assert_eq!(analysis.steps, vec![vec![16, 8], vec![16]]);
        assert_eq!(analysis.total_bytes(), 40);
        assert_eq!(analysis.retransmits, 1);
        assert_eq!(analysis.undelivered, 1);
        assert_eq!(analysis.links.len(), 2);
        let expected: f64 = (1e-4 + 16.0 / 1e9) + (1e-4 + 16.0 / 1e9);
        assert_eq!(
            analysis.schedule_time(1e-4, 1e9).to_bits(),
            expected.to_bits()
        );
    }

    #[test]
    fn validate_passes_on_well_formed_log() {
        let t = sample_log();
        let events = parse_jsonl(&t.events_jsonl()).unwrap();
        assert_eq!(validate(&events), Vec::<String>::new());
    }

    #[test]
    fn validate_flags_problems() {
        let events = vec![
            Event {
                time_s: 1.0,
                name: "hop".to_string(),
                fields: vec![
                    ("seq".to_string(), Value::U64(1)),
                    ("send".to_string(), Value::U64(0)),
                    ("recv".to_string(), Value::U64(0)),
                ],
            },
            Event {
                time_s: 0.5, // goes backwards
                name: "x".to_string(),
                fields: vec![],
            },
        ];
        let errors = validate(&events);
        assert!(errors.iter().any(|e| e.contains("expected \"run_meta\"")));
        assert!(errors.iter().any(|e| e.contains("not monotone")));
        assert!(errors.iter().any(|e| e.contains("to itself")));
        assert!(errors.iter().any(|e| e.contains("not contiguous")));
    }

    #[test]
    fn empty_log_is_invalid() {
        assert!(!validate(&[]).is_empty());
    }

    fn rank_log(rank: usize, wall_base: u64) -> Vec<Event> {
        let t = Telemetry::recording();
        t.emit(
            "run_meta",
            vec![
                ("schema", Value::Str("marsit-telemetry/1".to_string())),
                ("seed", Value::U64(7)),
            ],
        );
        scoped(&t, || {
            let mut rec = HopRecorder::begin();
            rec.hop_timed(
                &Hop {
                    expanded_step: rank, // each rank receives a distinct step
                    step: rank,
                    phase: "reduce",
                    sender: (rank + 2) % 3,
                    receiver: rank,
                    segment: 0,
                    elems: 4,
                    bytes: 8,
                    attempt: 1,
                    delivered: true,
                },
                crate::HopTiming {
                    round: Some(0),
                    send_ns: Some(wall_base + rank as u64),
                    recv_ns: Some(wall_base + rank as u64 + 50),
                },
            );
            rec.reserve_steps(3);
        });
        t.snapshot_events()
    }

    /// Merging the same per-rank logs in any file order yields the same
    /// causally-ordered event sequence, byte-identical once wall-clock
    /// fields are stripped — even when the wall clocks themselves differ.
    #[test]
    fn merge_is_order_invariant_and_wall_clock_free() {
        let logs_a = vec![rank_log(0, 1000), rank_log(1, 1000), rank_log(2, 1000)];
        let logs_b = vec![logs_a[2].clone(), logs_a[0].clone(), logs_a[1].clone()];
        let render = |logs: &[Vec<Event>]| {
            let mut merged = merge_logs(logs);
            strip_wall_clock(&mut merged);
            let mut s = String::new();
            for ev in &merged {
                ev.write_jsonl(&mut s);
                s.push('\n');
            }
            s
        };
        assert_eq!(render(&logs_a), render(&logs_b));
        // A re-run with different wall clocks strips to the same bytes.
        let rerun = vec![rank_log(1, 9999), rank_log(2, 9999), rank_log(0, 9999)];
        assert_eq!(render(&logs_a), render(&rerun));
        // The merge is causally ordered and deduplicates run_meta.
        let merged = merge_logs(&logs_a);
        assert_eq!(merged[0].name, "run_meta");
        assert_eq!(merged[1].name, "hop");
        let seqs: Vec<u64> = merged
            .iter()
            .filter(|e| e.name == "hop")
            .map(|e| e.u64_field("seq").unwrap())
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(
            merged.iter().filter(|e| e.name == "run_meta").count(),
            1,
            "identical run_meta events must deduplicate"
        );
        // The merged log passes schema validation.
        let mut stripped = merged;
        strip_wall_clock(&mut stripped);
        assert_eq!(validate(&stripped), Vec::<String>::new());
    }

    #[test]
    fn strip_removes_only_wall_fields() {
        let mut evs = vec![Event {
            time_s: 0.0,
            name: "hop".to_string(),
            fields: vec![
                ("seq".to_string(), Value::U64(0)),
                ("wall_ns".to_string(), Value::U64(123)),
                ("send_ns".to_string(), Value::U64(456)),
                ("recv_ns".to_string(), Value::U64(789)),
                ("bytes".to_string(), Value::U64(8)),
            ],
        }];
        strip_wall_clock(&mut evs);
        let keys: Vec<&str> = evs[0].fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["seq", "bytes"]);
    }
}
