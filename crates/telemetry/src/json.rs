//! Minimal hand-rolled JSON writer and parser.
//!
//! The workspace's vendored serde shim is a no-op (its derives emit
//! nothing), so all machine-readable output in this repository is
//! hand-encoded. This module centralizes the two halves the telemetry layer
//! needs: byte-deterministic *writing* (stable key order is the caller's
//! job; float formatting uses Rust's shortest-roundtrip `Display`, which is
//! platform-independent) and a small recursive-descent *parser* sufficient
//! for the event log and summary schemas.

/// Escape and write `s` as a JSON string literal (with surrounding quotes).
///
/// Runs of bytes that need no escaping are copied in bulk: every byte that
/// does need escaping is ASCII, so byte indices of such bytes are always
/// `char` boundaries and the clean spans between them can be appended as-is.
/// (Snapshot payloads push megabyte hex strings through here; a per-char
/// loop dominates serialization time.)
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: &str = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            b if b < 0x20 => "",
            _ => continue,
        };
        out.push_str(&s[start..i]);
        if escape.is_empty() {
            out.push_str(&format!("\\u{:04x}", u32::from(b)));
        } else {
            out.push_str(escape);
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Write `v` as a JSON number using the shortest representation that
/// round-trips. Non-finite values (which the telemetry layer never
/// produces) are written as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, with key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integral numeric value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parse a complete JSON document from `input`.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error, or if
/// trailing non-whitespace follows the document.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the run up to the next quote or backslash: both are
            // ASCII, so in the (valid UTF-8) input they always lie on char
            // boundaries, and everything between them copies verbatim.
            let run_start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > run_start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[run_start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?,
                );
            }
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our schemas;
                            // lone surrogates decode to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape \\{} at byte {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                _ => unreachable!("bulk copy stops only at quote or backslash"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" back\\slash \n\t\r ctrl\u{1} unicode é√";
        let mut encoded = String::new();
        write_str(&mut encoded, original);
        let decoded = parse(&encoded).unwrap();
        assert_eq!(decoded.as_str(), Some(original));
    }

    #[test]
    fn f64_formatting_roundtrips() {
        for v in [0.0, 0.1, 1.0 / 3.0, 1e-300, 123_456_789.125, -2.5] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn integers_survive_exactly() {
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(1 << 53));
        let v = parse("112").unwrap();
        assert_eq!(v.as_u64(), Some(112));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
