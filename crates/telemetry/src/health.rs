//! Cross-rank hop-latency aggregation and online straggler detection.
//!
//! Works on the *merged* trace a [`crate::report::merge_logs`] pass (or the
//! live `TraceCollector`) produces: `hop` events carrying the trace-context
//! timing fields (`round`, `send_ns`, `recv_ns`). Everything here uses the
//! wall clock — these numbers describe a real multi-process run, not the
//! α–β model — so none of it participates in the determinism contract.
//!
//! # What "straggler" means here
//!
//! A slow rank does not make its *links* slow: TCP transit time for a
//! 1-bit-compressed payload is microseconds either way. What a straggler
//! does is show up *late* — its sends for step `seq` of round `r` start
//! long after the fastest rank's. The detector therefore scores each rank
//! by its **send lag**: per (round, seq) group, `lag = send_ns − min
//! send_ns over the group`, attributed to the sender. Link health uses the
//! orthogonal **transit** time `recv_ns − send_ns`.
//!
//! Both feed an EWMA per rank/link; a rank whose smoothed lag exceeds
//! [`DetectorConfig::ratio_threshold`] × the median of all ranks' EWMAs
//! *and* an absolute floor ([`DetectorConfig::min_lag_ns`], which keeps a
//! fast clean run from flagging noise) raises
//! [`HealthEvent::StragglerSuspected`]. A rank with no hops at all in a
//! round raises [`HealthEvent::RankSilent`].

use std::collections::BTreeMap;

use crate::{Event, Value};

/// One timed hop extracted from a merged trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopSample {
    /// Round the hop belongs to (from the trace context).
    pub round: u64,
    /// Absolute expanded-step sequence number.
    pub seq: u64,
    /// Sending rank.
    pub send: usize,
    /// Receiving rank.
    pub recv: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// 1-based attempt number.
    pub attempt: u64,
    /// Sender wall-clock nanos, when the frame carried trace context.
    pub send_ns: Option<u64>,
    /// Receiver wall-clock nanos, when the receiver stamped arrival.
    pub recv_ns: Option<u64>,
}

impl HopSample {
    /// Wire transit time in nanos (`recv_ns − send_ns`, clamped at 0), when
    /// both clocks are present.
    pub fn transit_ns(&self) -> Option<u64> {
        match (self.send_ns, self.recv_ns) {
            (Some(s), Some(r)) => Some(r.saturating_sub(s)),
            _ => None,
        }
    }
}

/// Extract every timed `hop` event (those with a `round` field) from a
/// parsed event stream. Hops without trace context are skipped — they carry
/// no cross-rank timing to aggregate.
pub fn hop_samples(events: &[Event]) -> Vec<HopSample> {
    let mut out = Vec::new();
    for ev in events {
        if ev.name != "hop" {
            continue;
        }
        let Some(round) = ev.u64_field("round") else {
            continue;
        };
        let (Some(seq), Some(send), Some(recv)) = (
            ev.u64_field("seq"),
            ev.u64_field("send"),
            ev.u64_field("recv"),
        ) else {
            continue;
        };
        out.push(HopSample {
            round,
            seq,
            send: send as usize,
            recv: recv as usize,
            bytes: ev.u64_field("bytes").unwrap_or(0),
            attempt: ev.u64_field("attempt").unwrap_or(1),
            send_ns: ev.u64_field("send_ns"),
            recv_ns: ev.u64_field("recv_ns"),
        });
    }
    out
}

/// Order statistics over a latency population, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (nearest-rank).
    pub p50_ns: u64,
    /// 95th percentile (nearest-rank).
    pub p95_ns: u64,
    /// 99th percentile (nearest-rank).
    pub p99_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarize a sample population (empty input yields all-zero summary).
    pub fn of(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        #[allow(clippy::cast_precision_loss)]
        let mean_ns = sum as f64 / count as f64;
        let q = |p: f64| {
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let idx = ((p * samples.len() as f64).ceil() as usize).max(1) - 1;
            samples[idx.min(samples.len() - 1)]
        };
        LatencySummary {
            count,
            mean_ns,
            p50_ns: q(0.50),
            p95_ns: q(0.95),
            p99_ns: q(0.99),
            max_ns: *samples.last().expect("non-empty"),
        }
    }
}

/// Per-rank aggregate over a trace (or one round of it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankAggregate {
    /// Send-lag summary: how late this rank's sends start relative to the
    /// fastest rank in each (round, seq) group.
    pub lag: LatencySummary,
    /// Hops this rank sent.
    pub hops_sent: u64,
    /// Bytes this rank sent.
    pub bytes_sent: u64,
    /// Retransmitted attempts (attempt ≥ 2) this rank sent.
    pub retransmits: u64,
}

/// Per-link (sender → receiver) aggregate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkAggregate {
    /// Wire transit summary (`recv_ns − send_ns`).
    pub transit: LatencySummary,
    /// Hops carried.
    pub hops: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Retransmitted attempts carried.
    pub retransmits: u64,
}

/// One round's cross-rank summary: the detector's unit of observation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundAggregate {
    /// Round number.
    pub round: u64,
    /// Mean send lag per rank at the round's *first* expanded step — the
    /// only step whose sends depend on nothing but local compute, so a
    /// straggler's delay has not yet propagated to its ring neighbours.
    /// Ranks that send nothing at that step are omitted.
    pub per_rank_lag_ns: BTreeMap<usize, f64>,
    /// Slowest rank's mean lag over the fastest's (≥ 1.0; 1.0 when only one
    /// rank or no timing data).
    pub skew_ratio: f64,
    /// Rank with the smallest mean lag.
    pub fastest: usize,
    /// Rank with the largest mean lag.
    pub slowest: usize,
}

/// Whole-trace aggregate: per round, per rank, per link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAggregate {
    /// Per-round summaries, in round order.
    pub rounds: Vec<RoundAggregate>,
    /// Per-rank aggregates over the whole trace.
    pub ranks: BTreeMap<usize, RankAggregate>,
    /// Per-link aggregates over the whole trace.
    pub links: BTreeMap<(usize, usize), LinkAggregate>,
}

/// Per-(round, seq) send lags: `send_ns − min(send_ns)` over the group,
/// attributed to the sender rank. Returns `(round, seq, rank, lag)`.
fn send_lags(samples: &[HopSample]) -> Vec<(u64, u64, usize, u64)> {
    let mut groups: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for s in samples {
        if let Some(ns) = s.send_ns {
            let slot = groups.entry((s.round, s.seq)).or_insert(u64::MAX);
            *slot = (*slot).min(ns);
        }
    }
    let mut out = Vec::new();
    for s in samples {
        if let Some(ns) = s.send_ns {
            let base = groups[&(s.round, s.seq)];
            out.push((s.round, s.seq, s.send, ns.saturating_sub(base)));
        }
    }
    out
}

/// Aggregate a sample set into per-round, per-rank, and per-link summaries.
pub fn aggregate(samples: &[HopSample]) -> TraceAggregate {
    let mut agg = TraceAggregate::default();
    let mut rank_lags: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    let mut round_rank_lags: BTreeMap<u64, BTreeMap<usize, Vec<u64>>> = BTreeMap::new();
    // Per-round straggler attribution reads only the round's first expanded
    // step: later steps inherit the straggler's delay through the dependency
    // chain (its ring successor cannot send before it hears from the
    // straggler), which would smear the lag over innocent ranks.
    let mut first_seq: BTreeMap<u64, u64> = BTreeMap::new();
    for s in samples {
        if s.send_ns.is_some() {
            let slot = first_seq.entry(s.round).or_insert(u64::MAX);
            *slot = (*slot).min(s.seq);
        }
    }
    for (round, seq, rank, lag) in send_lags(samples) {
        rank_lags.entry(rank).or_default().push(lag);
        if first_seq.get(&round) == Some(&seq) {
            round_rank_lags
                .entry(round)
                .or_default()
                .entry(rank)
                .or_default()
                .push(lag);
        }
    }
    let mut link_transits: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new();
    for s in samples {
        let rank = agg.ranks.entry(s.send).or_default();
        rank.hops_sent += 1;
        rank.bytes_sent += s.bytes;
        if s.attempt > 1 {
            rank.retransmits += 1;
        }
        let link = agg.links.entry((s.send, s.recv)).or_default();
        link.hops += 1;
        link.bytes += s.bytes;
        if s.attempt > 1 {
            link.retransmits += 1;
        }
        if let Some(t) = s.transit_ns() {
            link_transits.entry((s.send, s.recv)).or_default().push(t);
        }
    }
    for (rank, lags) in rank_lags {
        if let Some(r) = agg.ranks.get_mut(&rank) {
            r.lag = LatencySummary::of(lags);
        }
    }
    for (link, transits) in link_transits {
        if let Some(l) = agg.links.get_mut(&link) {
            l.transit = LatencySummary::of(transits);
        }
    }
    for (round, per_rank) in round_rank_lags {
        agg.rounds.push(round_aggregate(round, &per_rank));
    }
    agg
}

/// Build one round's [`RoundAggregate`] from its per-rank lag samples.
fn round_aggregate(round: u64, per_rank: &BTreeMap<usize, Vec<u64>>) -> RoundAggregate {
    let mut out = RoundAggregate {
        round,
        skew_ratio: 1.0,
        ..RoundAggregate::default()
    };
    for (&rank, lags) in per_rank {
        #[allow(clippy::cast_precision_loss)]
        let mean = lags.iter().map(|&v| v as f64).sum::<f64>() / lags.len() as f64;
        out.per_rank_lag_ns.insert(rank, mean);
    }
    if let (Some((&fast, &fast_ns)), Some((&slow, &slow_ns))) = (
        out.per_rank_lag_ns
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(b.0))),
        out.per_rank_lag_ns
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0))),
    ) {
        out.fastest = fast;
        out.slowest = slow;
        // Lags are relative to the fastest sender, whose own mean can be ~0;
        // anchor the ratio at 1µs so it stays finite and ≥ 1.
        out.skew_ratio = (slow_ns.max(1e3) / fast_ns.max(1e3)).max(1.0);
    }
    out
}

/// A typed health finding raised by the [`StragglerDetector`].
#[derive(Debug, Clone, PartialEq)]
pub enum HealthEvent {
    /// A rank's smoothed send lag exceeds the cross-rank median by the
    /// configured ratio (and the absolute floor).
    StragglerSuspected {
        /// The suspected rank.
        rank: usize,
        /// Round of the observation.
        round: u64,
        /// The rank's EWMA-smoothed send lag, nanos.
        lag_ns: u64,
        /// `lag / median(all ranks' EWMAs)`.
        ratio: f64,
    },
    /// A link's smoothed transit time exceeds the cross-link median by the
    /// configured ratio (and the absolute floor).
    LinkDegraded {
        /// Sending rank.
        send: usize,
        /// Receiving rank.
        recv: usize,
        /// Round of the observation.
        round: u64,
        /// The link's EWMA-smoothed transit, nanos.
        transit_ns: u64,
        /// `transit / median(all links' EWMAs)`.
        ratio: f64,
    },
    /// A rank previously seen sending emitted no hops at all this round.
    RankSilent {
        /// The silent rank.
        rank: usize,
        /// Round of the (non-)observation.
        round: u64,
    },
}

impl HealthEvent {
    /// Stable lowercase kind label (`"straggler_suspected"`, …) used as the
    /// telemetry field and Prometheus label value.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthEvent::StragglerSuspected { .. } => "straggler_suspected",
            HealthEvent::LinkDegraded { .. } => "link_degraded",
            HealthEvent::RankSilent { .. } => "rank_silent",
        }
    }

    /// The health event as telemetry fields, for `emit("health", …)`.
    pub fn fields(&self) -> Vec<(&'static str, Value)> {
        match *self {
            HealthEvent::StragglerSuspected {
                rank,
                round,
                lag_ns,
                ratio,
            } => vec![
                ("kind", Value::Str(self.kind().to_string())),
                ("rank", Value::U64(rank as u64)),
                ("round", Value::U64(round)),
                ("lag_ns", Value::U64(lag_ns)),
                ("ratio", Value::F64(ratio)),
            ],
            HealthEvent::LinkDegraded {
                send,
                recv,
                round,
                transit_ns,
                ratio,
            } => vec![
                ("kind", Value::Str(self.kind().to_string())),
                ("send", Value::U64(send as u64)),
                ("recv", Value::U64(recv as u64)),
                ("round", Value::U64(round)),
                ("transit_ns", Value::U64(transit_ns)),
                ("ratio", Value::F64(ratio)),
            ],
            HealthEvent::RankSilent { rank, round } => vec![
                ("kind", Value::Str(self.kind().to_string())),
                ("rank", Value::U64(rank as u64)),
                ("round", Value::U64(round)),
            ],
        }
    }
}

/// Detector thresholds. The defaults are tuned for CI-grade localhost runs:
/// a 2.5× compute straggler with ≥ 10 ms base compute produces a lag tens of
/// milliseconds over the median — far above both gates — while clean-run
/// scheduling jitter stays below the 5 ms floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA smoothing factor in (0, 1]; higher reacts faster.
    pub ewma_alpha: f64,
    /// Flag a rank when its EWMA lag > this × the median EWMA.
    pub ratio_threshold: f64,
    /// Absolute lag floor (ns); below it nothing is flagged regardless of
    /// ratio. Guards against flagging microsecond noise on clean runs.
    pub min_lag_ns: f64,
    /// Flag a link when its EWMA transit > this × the median link EWMA.
    pub link_ratio_threshold: f64,
    /// Absolute transit floor (ns) for link flagging.
    pub min_transit_ns: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ewma_alpha: 0.4,
            ratio_threshold: 2.0,
            min_lag_ns: 5.0e6,
            link_ratio_threshold: 3.0,
            min_transit_ns: 20.0e6,
        }
    }
}

/// Online EWMA + median-ratio detector over per-round aggregates.
///
/// Feed it one [`RoundAggregate`] at a time ([`StragglerDetector::
/// observe_round`]); it keeps per-rank and per-link EWMAs across rounds and
/// returns the health events the new observation triggers. For post-hoc
/// analysis, [`detect`] runs a whole sample set through a fresh detector.
#[derive(Debug, Clone, Default)]
pub struct StragglerDetector {
    cfg: DetectorConfig,
    ewma_lag: BTreeMap<usize, f64>,
    ewma_transit: BTreeMap<(usize, usize), f64>,
    ever_sent: std::collections::BTreeSet<usize>,
}

impl StragglerDetector {
    /// Detector with the given thresholds.
    pub fn new(cfg: DetectorConfig) -> StragglerDetector {
        StragglerDetector {
            cfg,
            ..StragglerDetector::default()
        }
    }

    /// Median of the map's values (0.0 when empty).
    fn median(values: impl Iterator<Item = f64>) -> f64 {
        let mut v: Vec<f64> = values.collect();
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    /// Feed one round's aggregate (and its per-link transit means, when
    /// available); returns the health events this observation raises.
    pub fn observe_round(
        &mut self,
        round: &RoundAggregate,
        link_transit_ns: &BTreeMap<(usize, usize), f64>,
    ) -> Vec<HealthEvent> {
        let a = self.cfg.ewma_alpha;
        for (&rank, &lag) in &round.per_rank_lag_ns {
            let e = self.ewma_lag.entry(rank).or_insert(lag);
            *e = a * lag + (1.0 - a) * *e;
        }
        for (&link, &t) in link_transit_ns {
            let e = self.ewma_transit.entry(link).or_insert(t);
            *e = a * t + (1.0 - a) * *e;
        }
        let mut events = Vec::new();
        // Silence first: a rank that has sent before but not this round.
        for &rank in &self.ever_sent {
            if !round.per_rank_lag_ns.contains_key(&rank) {
                events.push(HealthEvent::RankSilent {
                    rank,
                    round: round.round,
                });
            }
        }
        self.ever_sent.extend(round.per_rank_lag_ns.keys().copied());
        let median_lag = Self::median(self.ewma_lag.values().copied());
        for (&rank, &lag) in &self.ewma_lag {
            if !round.per_rank_lag_ns.contains_key(&rank) {
                continue; // no fresh observation this round
            }
            let ratio = lag / median_lag.max(1.0);
            if lag >= self.cfg.min_lag_ns && ratio >= self.cfg.ratio_threshold {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                events.push(HealthEvent::StragglerSuspected {
                    rank,
                    round: round.round,
                    lag_ns: lag as u64,
                    ratio,
                });
            }
        }
        let median_transit = Self::median(self.ewma_transit.values().copied());
        for (&(send, recv), &t) in &self.ewma_transit {
            if !link_transit_ns.contains_key(&(send, recv)) {
                continue;
            }
            let ratio = t / median_transit.max(1.0);
            if t >= self.cfg.min_transit_ns && ratio >= self.cfg.link_ratio_threshold {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                events.push(HealthEvent::LinkDegraded {
                    send,
                    recv,
                    round: round.round,
                    transit_ns: t as u64,
                    ratio,
                });
            }
        }
        events
    }
}

/// Run a whole sample set through a fresh default-config detector, round by
/// round in order; returns every health event raised.
pub fn detect(samples: &[HopSample]) -> Vec<HealthEvent> {
    let agg = aggregate(samples);
    let mut det = StragglerDetector::default();
    let mut events = Vec::new();
    for round in &agg.rounds {
        let link_means = round_link_transits(samples, round.round);
        events.extend(det.observe_round(round, &link_means));
    }
    events
}

/// Mean transit per link over one round's samples.
pub fn round_link_transits(samples: &[HopSample], round: u64) -> BTreeMap<(usize, usize), f64> {
    let mut sums: BTreeMap<(usize, usize), (f64, f64)> = BTreeMap::new();
    for s in samples.iter().filter(|s| s.round == round) {
        if let Some(t) = s.transit_ns() {
            let e = sums.entry((s.send, s.recv)).or_insert((0.0, 0.0));
            #[allow(clippy::cast_precision_loss)]
            {
                e.0 += t as f64;
            }
            e.1 += 1.0;
        }
    }
    sums.into_iter().map(|(k, (s, n))| (k, s / n)).collect()
}

/// Render a [`TraceAggregate`] plus health events as Prometheus text
/// exposition (the dump `marsit_top --prom` serves to the future job
/// server). Deterministic ordering: metrics sorted by name, labels by rank/
/// link.
pub fn prometheus_text(agg: &TraceAggregate, health: &[HealthEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("# HELP marsit_rank_lag_ns Send-lag quantiles per rank (ns).\n");
    out.push_str("# TYPE marsit_rank_lag_ns summary\n");
    for (rank, r) in &agg.ranks {
        for (q, v) in [
            ("0.5", r.lag.p50_ns),
            ("0.95", r.lag.p95_ns),
            ("0.99", r.lag.p99_ns),
        ] {
            let _ = writeln!(
                out,
                "marsit_rank_lag_ns{{rank=\"{rank}\",quantile=\"{q}\"}} {v}"
            );
        }
    }
    out.push_str("# HELP marsit_rank_bytes_sent_total Bytes sent per rank.\n");
    out.push_str("# TYPE marsit_rank_bytes_sent_total counter\n");
    for (rank, r) in &agg.ranks {
        let _ = writeln!(
            out,
            "marsit_rank_bytes_sent_total{{rank=\"{rank}\"}} {}",
            r.bytes_sent
        );
    }
    out.push_str("# HELP marsit_link_transit_ns Wire transit quantiles per link (ns).\n");
    out.push_str("# TYPE marsit_link_transit_ns summary\n");
    for (&(send, recv), l) in &agg.links {
        for (q, v) in [
            ("0.5", l.transit.p50_ns),
            ("0.95", l.transit.p95_ns),
            ("0.99", l.transit.p99_ns),
        ] {
            let _ = writeln!(
                out,
                "marsit_link_transit_ns{{send=\"{send}\",recv=\"{recv}\",quantile=\"{q}\"}} {v}"
            );
        }
    }
    out.push_str("# HELP marsit_link_retransmits_total Retransmitted attempts per link.\n");
    out.push_str("# TYPE marsit_link_retransmits_total counter\n");
    for (&(send, recv), l) in &agg.links {
        let _ = writeln!(
            out,
            "marsit_link_retransmits_total{{send=\"{send}\",recv=\"{recv}\"}} {}",
            l.retransmits
        );
    }
    out.push_str("# HELP marsit_round_skew_ratio Slowest/fastest rank lag per round.\n");
    out.push_str("# TYPE marsit_round_skew_ratio gauge\n");
    for r in &agg.rounds {
        let _ = writeln!(
            out,
            "marsit_round_skew_ratio{{round=\"{}\"}} {}",
            r.round, r.skew_ratio
        );
    }
    out.push_str("# HELP marsit_health_events_total Health events by kind.\n");
    out.push_str("# TYPE marsit_health_events_total counter\n");
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for h in health {
        *by_kind.entry(h.kind()).or_default() += 1;
    }
    for kind in ["link_degraded", "rank_silent", "straggler_suspected"] {
        let _ = writeln!(
            out,
            "marsit_health_events_total{{kind=\"{kind}\"}} {}",
            by_kind.get(kind).copied().unwrap_or(0)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64, seq: u64, send: usize, recv: usize, send_ns: u64) -> HopSample {
        HopSample {
            round,
            seq,
            send,
            recv,
            bytes: 8,
            attempt: 1,
            send_ns: Some(send_ns),
            recv_ns: Some(send_ns + 50_000), // 50 µs transit
        }
    }

    /// Four ranks, rank 2 always 60 ms late: the detector flags exactly
    /// rank 2 and nothing else.
    fn straggler_samples(rounds: u64) -> Vec<HopSample> {
        let mut out = Vec::new();
        for round in 0..rounds {
            let t0 = 1_000_000_000 * (round + 1);
            for seq in 0..6u64 {
                let step_t = t0 + seq * 200_000;
                for rank in 0..4usize {
                    let lag = if rank == 2 {
                        60_000_000
                    } else {
                        100_000 * rank as u64
                    };
                    out.push(sample(round, seq, rank, (rank + 1) % 4, step_t + lag));
                }
            }
        }
        out
    }

    #[test]
    fn detector_flags_exactly_the_straggler() {
        let samples = straggler_samples(4);
        let events = detect(&samples);
        assert!(!events.is_empty(), "straggler went undetected");
        for ev in &events {
            match ev {
                HealthEvent::StragglerSuspected { rank, .. } => assert_eq!(*rank, 2, "{ev:?}"),
                other => panic!("unexpected health event: {other:?}"),
            }
        }
    }

    #[test]
    fn clean_run_raises_nothing() {
        // All ranks within 300 µs of each other: below the 5 ms floor.
        let mut out = Vec::new();
        for round in 0..4u64 {
            for seq in 0..6u64 {
                let t = 1_000_000_000 * (round + 1) + seq * 200_000;
                for rank in 0..4usize {
                    out.push(sample(
                        round,
                        seq,
                        rank,
                        (rank + 1) % 4,
                        t + 100_000 * rank as u64,
                    ));
                }
            }
        }
        assert_eq!(detect(&out), vec![]);
    }

    #[test]
    fn silent_rank_is_reported() {
        let mut samples = straggler_samples(2);
        // Round 2: rank 3 disappears.
        let t0 = 4_000_000_000u64;
        for seq in 0..6u64 {
            for rank in 0..3usize {
                samples.push(sample(2, seq, rank, (rank + 1) % 4, t0 + seq * 200_000));
            }
        }
        let silent: Vec<_> = detect(&samples)
            .into_iter()
            .filter(|e| matches!(e, HealthEvent::RankSilent { .. }))
            .collect();
        assert_eq!(silent, vec![HealthEvent::RankSilent { rank: 3, round: 2 }]);
    }

    #[test]
    fn aggregate_orders_rounds_and_computes_skew() {
        let samples = straggler_samples(3);
        let agg = aggregate(&samples);
        assert_eq!(agg.rounds.len(), 3);
        assert_eq!(
            agg.rounds.iter().map(|r| r.round).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        for r in &agg.rounds {
            assert_eq!(r.slowest, 2);
            assert_eq!(r.fastest, 0);
            assert!(r.skew_ratio > 10.0, "skew {}", r.skew_ratio);
        }
        assert_eq!(agg.ranks.len(), 4);
        assert_eq!(agg.links.len(), 4);
        let r2 = &agg.ranks[&2];
        assert_eq!(r2.lag.p50_ns, 60_000_000);
        assert_eq!(r2.hops_sent, 18);
    }

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::of((1..=100).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert_eq!(LatencySummary::of(vec![]), LatencySummary::default());
    }

    #[test]
    fn prometheus_dump_is_deterministic_and_labeled() {
        let samples = straggler_samples(2);
        let agg = aggregate(&samples);
        let health = detect(&samples);
        let a = prometheus_text(&agg, &health);
        let b = prometheus_text(&agg, &health);
        assert_eq!(a, b);
        assert!(a.contains("marsit_rank_lag_ns{rank=\"2\",quantile=\"0.99\"}"));
        assert!(a.contains("marsit_round_skew_ratio{round=\"0\"}"));
        assert!(a.contains("marsit_health_events_total{kind=\"straggler_suspected\"}"));
        let straggler_count: u64 = a
            .lines()
            .find(|l| l.starts_with("marsit_health_events_total{kind=\"straggler_suspected\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        assert!(straggler_count > 0);
    }

    #[test]
    fn hop_samples_skips_untraced_hops() {
        let traced = Event::parse_jsonl(
            r#"{"t":0.1,"ev":"hop","seq":3,"phase":"reduce","step":1,"send":0,"recv":1,"seg":0,"elems":64,"bytes":8,"attempt":1,"delivered":true,"round":2,"send_ns":1000,"recv_ns":1500}"#,
        )
        .unwrap();
        let untraced = Event::parse_jsonl(
            r#"{"t":0.1,"ev":"hop","seq":4,"phase":"reduce","step":1,"send":1,"recv":2,"seg":0,"elems":64,"bytes":8,"attempt":1,"delivered":true}"#,
        )
        .unwrap();
        let samples = hop_samples(&[traced, untraced]);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].round, 2);
        assert_eq!(samples[0].transit_ns(), Some(500));
    }
}
