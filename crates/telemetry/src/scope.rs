//! Thread-local ambient telemetry scope and per-hop sequence accounting.
//!
//! The collectives are deep in the call stack and deliberately keep their
//! signatures telemetry-free; instead, a caller installs a recording handle
//! with [`scoped`] and instrumented code picks it up with [`active`] or
//! [`HopRecorder::begin`].
//!
//! # Expanded-step sequence numbers
//!
//! Every wire attempt is emitted as one `hop` event tagged with an absolute
//! *expanded-step* sequence number (`seq`) — the index of the
//! `Trace`/`cost::schedule_time` step slot the attempt's bytes occupy, where
//! a logical step with up to `k` attempts per transfer expands into `k`
//! consecutive slots (attempt `a` rides slot `a − 1`; retry sub-steps are a
//! contiguous prefix by construction). Grouping events by `seq` in emission
//! order therefore rebuilds the exact step structure the collectives traced,
//! and repricing it with the same α–β arithmetic reproduces
//! `Trace::time` bit-for-bit (see [`crate::report`]).
//!
//! Each collective claims a base `seq` when its [`HopRecorder`] begins and
//! advances the global counter by the number of expanded slots it used when
//! the recorder drops. The 2D-torus vertical phase is the special case: its
//! per-column sub-rings *share* step slots (`merge_parallel`). The torus
//! pushes a [`HopRecorder::column_frame`] around each column's sub-ring call;
//! a framed sub-ring maps its local step `i` to `frame.base + i` and its
//! local worker ids through the column's global ids, and does *not* advance
//! the global counter — the torus's own accounting covers the merged steps.

use std::cell::RefCell;

use crate::Telemetry;

/// One wire attempt, in the emitting collective's local coordinates.
#[derive(Debug, Clone)]
pub struct Hop {
    /// Index of the expanded step slot within this collective's own trace.
    pub expanded_step: usize,
    /// Logical step number within the phase (ring reduce step `r`, gather
    /// step `g`, …).
    pub step: usize,
    /// Phase label, collective-local (`"reduce"` / `"gather"`).
    pub phase: &'static str,
    /// Sending worker, in the collective's local numbering.
    pub sender: usize,
    /// Receiving worker, in the collective's local numbering.
    pub receiver: usize,
    /// Segment index, collective-local.
    pub segment: usize,
    /// Number of tensor elements the payload encodes.
    pub elems: usize,
    /// Payload bytes for this attempt.
    pub bytes: usize,
    /// 1-based attempt number (1 = first transmission, ≥ 2 = retransmit).
    pub attempt: u32,
    /// Whether this attempt delivered the payload (earlier attempts of a
    /// retried transfer are `false`; an abandoned best-effort transfer's
    /// final attempt is also `false`).
    pub delivered: bool,
}

/// Optional trace-context timing attached to a hop by a traced transport:
/// the round it belongs to plus sender/receiver wall-clock nanos. `None`
/// fields are omitted from the event entirely, so the default (all-`None`)
/// timing records the legacy schema byte-for-byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopTiming {
    /// Round the hop belongs to.
    pub round: Option<u64>,
    /// Sender wall-clock nanos (from the propagated trace context).
    pub send_ns: Option<u64>,
    /// Receiver wall-clock nanos (stamped at arrival).
    pub recv_ns: Option<u64>,
}

#[derive(Debug)]
struct Frame {
    base_seq: u64,
    workers: Vec<usize>,
}

#[derive(Debug)]
struct ScopeEntry {
    telemetry: Telemetry,
    frames: Vec<Frame>,
}

thread_local! {
    static SCOPES: RefCell<Vec<ScopeEntry>> = const { RefCell::new(Vec::new()) };
}

/// Install `t` as the thread's ambient telemetry for the duration of `f`.
///
/// Disabled handles install nothing, so the clean path stays a single
/// branch. Scopes nest; the innermost wins. The scope is popped even if `f`
/// panics.
pub fn scoped<R>(t: &Telemetry, f: impl FnOnce() -> R) -> R {
    if !t.is_enabled() {
        return f();
    }
    SCOPES.with(|s| {
        s.borrow_mut().push(ScopeEntry {
            telemetry: t.clone(),
            frames: Vec::new(),
        });
    });
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _guard = PopGuard;
    f()
}

/// The innermost ambient telemetry handle, if one is installed and enabled.
pub fn active() -> Option<Telemetry> {
    SCOPES.with(|s| s.borrow().last().map(|e| e.telemetry.clone()))
}

struct RecorderInner {
    telemetry: Telemetry,
    base_seq: u64,
    /// Worker-id relabeling inherited from a column frame, if any.
    worker_map: Option<Vec<usize>>,
    framed: bool,
    /// Expanded step slots used so far (max `expanded_step + 1` seen).
    used: u64,
}

/// Per-collective emitter of `hop` events with sequence accounting.
///
/// Cheap to construct when no telemetry is active (a thread-local read); all
/// methods are no-ops in that case.
pub struct HopRecorder {
    inner: Option<RecorderInner>,
}

impl HopRecorder {
    /// Bind to the ambient telemetry scope, claiming this collective's base
    /// sequence number (from the innermost column frame when one is active,
    /// otherwise from the global counter).
    pub fn begin() -> HopRecorder {
        let inner = SCOPES.with(|s| {
            let scopes = s.borrow();
            let entry = scopes.last()?;
            let telemetry = entry.telemetry.clone();
            match entry.frames.last() {
                Some(frame) => Some(RecorderInner {
                    base_seq: frame.base_seq,
                    worker_map: Some(frame.workers.clone()),
                    framed: true,
                    used: 0,
                    telemetry,
                }),
                None => Some(RecorderInner {
                    base_seq: telemetry.peek_seq(),
                    worker_map: None,
                    framed: false,
                    used: 0,
                    telemetry,
                }),
            }
        });
        HopRecorder { inner }
    }

    /// Whether hops are being recorded (false on the clean no-op path).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one wire attempt.
    pub fn hop(&mut self, hop: &Hop) {
        self.hop_timed(hop, HopTiming::default());
    }

    /// Record one wire attempt carrying trace-context timing. All-`None`
    /// timing is exactly [`HopRecorder::hop`].
    pub fn hop_timed(&mut self, hop: &Hop, timing: HopTiming) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let seq = inner.base_seq + hop.expanded_step as u64;
        inner.used = inner.used.max(hop.expanded_step as u64 + 1);
        let (send, recv) = match &inner.worker_map {
            Some(map) => (map[hop.sender], map[hop.receiver]),
            None => (hop.sender, hop.receiver),
        };
        inner
            .telemetry
            .record_hop_timed(seq, send, recv, hop, timing);
    }

    /// The absolute sequence number this recorder would assign to
    /// `expanded_step`, without recording anything. `None` when inactive.
    /// Senders stamp this into the outgoing trace context so the receiver's
    /// hop event and the sender's frame agree on the step key.
    pub fn seq_of(&self, expanded_step: usize) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|inner| inner.base_seq + expanded_step as u64)
    }

    /// Mark the first `n` expanded step slots as used even if this rank
    /// recorded hops for only a subset of them. Ranks in a multi-process run
    /// receive on different step subsets; reserving the full plan width
    /// keeps their per-round sequence windows aligned so merged traces share
    /// one absolute key space.
    pub fn reserve_steps(&mut self, n: usize) {
        if let Some(inner) = &mut self.inner {
            inner.used = inner.used.max(n as u64);
        }
    }

    /// Open a column frame for a sub-collective whose trace will be merged
    /// in parallel at `local_offset` within this collective's own steps,
    /// with `workers` mapping the sub-collective's local worker ids to
    /// global ones. The frame closes when the guard drops.
    pub fn column_frame(&self, local_offset: usize, workers: Vec<usize>) -> FrameGuard {
        let Some(inner) = &self.inner else {
            return FrameGuard { pushed: false };
        };
        SCOPES.with(|s| {
            if let Some(entry) = s.borrow_mut().last_mut() {
                entry.frames.push(Frame {
                    base_seq: inner.base_seq + local_offset as u64,
                    workers,
                });
            }
        });
        FrameGuard { pushed: true }
    }
}

impl Drop for HopRecorder {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            if !inner.framed {
                inner.telemetry.advance_seq(inner.base_seq + inner.used);
            }
        }
    }
}

/// Closes a [`HopRecorder::column_frame`] on drop.
pub struct FrameGuard {
    pushed: bool,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if self.pushed {
            SCOPES.with(|s| {
                if let Some(entry) = s.borrow_mut().last_mut() {
                    entry.frames.pop();
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(expanded_step: usize, sender: usize, receiver: usize, bytes: usize) -> Hop {
        Hop {
            expanded_step,
            step: expanded_step,
            phase: "reduce",
            sender,
            receiver,
            segment: 0,
            elems: bytes,
            bytes,
            attempt: 1,
            delivered: true,
        }
    }

    #[test]
    fn no_scope_means_no_recording() {
        let mut rec = HopRecorder::begin();
        assert!(!rec.is_active());
        rec.hop(&hop(0, 0, 1, 4)); // must not panic or record anywhere
    }

    #[test]
    fn sequential_collectives_get_disjoint_seqs() {
        let t = Telemetry::recording();
        scoped(&t, || {
            {
                let mut rec = HopRecorder::begin();
                rec.hop(&hop(0, 0, 1, 4));
                rec.hop(&hop(1, 1, 0, 4));
            }
            {
                let mut rec = HopRecorder::begin();
                rec.hop(&hop(0, 0, 1, 8));
            }
        });
        let seqs: Vec<u64> = t
            .snapshot_events()
            .iter()
            .map(|e| e.u64_field("seq").unwrap())
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn framed_subcollective_shares_slots_and_relabels_workers() {
        let t = Telemetry::recording();
        scoped(&t, || {
            let mut rec = HopRecorder::begin();
            rec.hop(&hop(0, 0, 1, 4)); // outer step 0
            {
                // Two "columns" merging into outer slots starting at 1, as
                // the torus vertical phase does.
                for (col, ids) in [(0usize, vec![10, 11]), (1, vec![20, 21])] {
                    let _f = rec.column_frame(1, ids);
                    let mut sub = HopRecorder::begin();
                    sub.hop(&hop(0, 0, 1, 2 + col));
                    sub.hop(&hop(1, 1, 0, 2 + col));
                }
            }
            rec.hop(&hop(3, 2, 3, 4)); // outer continues after the merge
        });
        let evs = t.snapshot_events();
        let rows: Vec<(u64, u64, u64)> = evs
            .iter()
            .map(|e| {
                (
                    e.u64_field("seq").unwrap(),
                    e.u64_field("send").unwrap(),
                    e.u64_field("recv").unwrap(),
                )
            })
            .collect();
        assert_eq!(
            rows,
            vec![
                (0, 0, 1),
                (1, 10, 11),
                (2, 11, 10),
                (1, 20, 21),
                (2, 21, 20),
                (3, 2, 3),
            ]
        );
        // The global counter advanced past everything the outer used.
        scoped(&t, || {
            let rec = HopRecorder::begin();
            assert_eq!(rec.inner.as_ref().unwrap().base_seq, 4);
        });
    }

    #[test]
    fn scope_pops_on_unwind() {
        let t = Telemetry::recording();
        let result = std::panic::catch_unwind(|| {
            scoped(&t, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(active().is_none());
    }
}
