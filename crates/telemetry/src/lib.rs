//! Deterministic observability for the Marsit reproduction.
//!
//! Everything in this crate is driven by the *simulated* clock (the α–β cost
//! model's seconds), never the wall clock, so a run replayed with the same
//! seed produces a byte-identical event log. The pieces:
//!
//! - [`Telemetry`]: a cheaply clonable handle that is either *disabled* (the
//!   no-op sink — every operation is a branch on `None` and returns
//!   immediately, recording nothing) or *recording* into a shared in-memory
//!   state of events, counters, gauges, and log2-bucket [`Histogram`]s;
//! - [`Event`]/[`Value`]: the schema-light event record, serialized as one
//!   JSON object per line ([`Telemetry::events_jsonl`]);
//! - [`scope`]: a thread-local ambient scope so deep call sites (the
//!   collectives' per-hop loops) can emit without threading a handle through
//!   every signature, plus the [`scope::HopRecorder`] that assigns each wire
//!   attempt its absolute expanded-step sequence number — including across
//!   the 2D-torus vertical phase, where per-column sub-rings share step slots;
//! - [`report`]: parsing and reconstruction — rebuilds the exact
//!   `Trace`-equivalent step structure from hop events and reprices it with
//!   the same α–β arithmetic;
//! - [`json`]: a minimal hand-rolled JSON writer/parser (the workspace's
//!   serde shim is a no-op, so all machine-readable output is hand-encoded).
//!
//! # The batched sink
//!
//! Recording must not distort what it measures. The sink therefore does no
//! string formatting and no per-field allocation inside the timed region:
//! an event is one fixed-size record pushed into a preallocated batch plus
//! its fields appended to a flat key/value arena, where keys are `&'static
//! str` and values are the scalar `CompactValue` repr. Hop events
//! additionally fold their derived statistics into fixed slots
//! (`HopStats`) rather than name-keyed map entries. JSONL text and owned
//! [`Event`] structs are *materialized on demand* — at flush, outside the
//! timed region. Steady state is allocation-free once the batch capacity
//! (claimed up front by [`Telemetry::recording`]) covers the run.
//!
//! Reading events back is explicit about cost: [`Telemetry::for_each_event`]
//! visits events without building a vector, [`Telemetry::snapshot_events`]
//! materializes an owned copy, and [`Telemetry::drain_events`] moves the
//! events out, resetting the batch while keeping its capacity.
//!
//! # Determinism contract
//!
//! With the same seed and configuration, two recording runs produce
//! byte-identical JSONL event logs and summary snapshots. Event timestamps
//! are whatever the *producer* last passed to [`Telemetry::set_time`]
//! (trainsim sets it to the cumulative simulated time at the start of each
//! round); floats are formatted with Rust's shortest-roundtrip formatter,
//! which is platform-independent.
//!
//! # Example
//!
//! ```
//! use marsit_telemetry::{Telemetry, Value};
//!
//! let t = Telemetry::recording();
//! t.set_time(0.5);
//! t.emit("round", vec![("round", Value::U64(0)), ("loss", Value::F64(2.3))]);
//! t.counter_add("rounds", 1);
//! t.observe("loss", 2.3);
//! assert_eq!(t.event_count(), 1);
//! assert!(t.events_jsonl().starts_with(r#"{"t":0.5,"ev":"round""#));
//!
//! let off = Telemetry::disabled();
//! off.emit("round", vec![]);
//! assert_eq!(off.event_count(), 0); // the no-op sink records nothing
//! ```
#![warn(missing_docs)]

pub mod health;
pub mod json;
pub mod metrics;
pub mod report;
pub mod scope;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

pub use health::{HealthEvent, StragglerDetector};
pub use metrics::Histogram;
pub use scope::{active, scoped, Hop, HopRecorder, HopTiming};

/// Wall-clock nanoseconds since the UNIX epoch.
///
/// This is the *dual-clock* timestamp: unlike the simulated clock it is
/// shared across worker processes on one host, so cross-rank hop latencies
/// computed from it are meaningful. It only ever reaches the event log when
/// wall-clock recording is explicitly enabled
/// ([`Telemetry::set_wall_clock`]) or a caller passes it to a timed hop —
/// deterministic logs never contain it.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub fn wall_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

/// A dynamically typed event-field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, indices, byte totals).
    U64(u64),
    /// Floating point (simulated seconds, norms, rates).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (labels, phase names).
    Str(String),
}

impl Value {
    /// The value as `u64`, if it is an integer (or an integral float, as
    /// produced by round-tripping through JSON).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Allocation-free field value as stored in the batch arena. Strings are
/// either borrowed for `'static` (event schemas use literal keys and phase
/// labels), shared (the transport tag, cloned per hop as an `Arc` bump), or
/// owned (caller-provided dynamic strings — the rare case).
#[derive(Debug, Clone)]
enum CompactValue {
    U64(u64),
    F64(f64),
    Bool(bool),
    Static(&'static str),
    Shared(Arc<str>),
    Owned(String),
}

impl CompactValue {
    fn from_value(v: Value) -> CompactValue {
        match v {
            Value::U64(n) => CompactValue::U64(n),
            Value::F64(x) => CompactValue::F64(x),
            Value::Bool(b) => CompactValue::Bool(b),
            Value::Str(s) => CompactValue::Owned(s),
        }
    }

    fn to_value(&self) -> Value {
        match self {
            CompactValue::U64(n) => Value::U64(*n),
            CompactValue::F64(x) => Value::F64(*x),
            CompactValue::Bool(b) => Value::Bool(*b),
            CompactValue::Static(s) => Value::Str((*s).to_string()),
            CompactValue::Shared(s) => Value::Str(s.as_ref().to_string()),
            CompactValue::Owned(s) => Value::Str(s.clone()),
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            CompactValue::U64(n) => {
                let mut buf = itoa_buf();
                out.push_str(write_u64(&mut buf, *n));
            }
            CompactValue::F64(x) => json::write_f64(out, *x),
            CompactValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            CompactValue::Static(s) => json::write_str(out, s),
            CompactValue::Shared(s) => json::write_str(out, s),
            CompactValue::Owned(s) => json::write_str(out, s),
        }
    }
}

/// Stack buffer for integer formatting (20 digits covers `u64::MAX`).
fn itoa_buf() -> [u8; 20] {
    [0u8; 20]
}

/// Format `n` into `buf` without heap allocation; returns the digits.
fn write_u64(buf: &mut [u8; 20], mut n: u64) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

/// One fixed-size event record in the batch; its fields live in the shared
/// key/value arena at `[field_start, field_start + field_len)`.
#[derive(Debug, Clone, Copy)]
struct EventRec {
    time_s: f64,
    name: &'static str,
    field_start: u32,
    field_len: u32,
}

/// One recorded event: a simulated timestamp, a name, and ordered fields.
///
/// This is the *materialized* (owned) view, built on demand from the compact
/// batch by [`Telemetry::snapshot_events`] and friends.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time in seconds when the event was recorded (the last value
    /// passed to [`Telemetry::set_time`] before emission).
    pub time_s: f64,
    /// Event name (`"hop"`, `"marsit_sync"`, `"round"`, …).
    pub name: String,
    /// Ordered `(key, value)` fields; order is preserved in the JSONL line.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Look up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as `u64`, `None` if absent or mistyped.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Value::as_u64)
    }

    /// Field as `f64`, `None` if absent or mistyped.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// Field as `bool`, `None` if absent or mistyped.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// Field as `&str`, `None` if absent or mistyped.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Append this event as one JSON object (no trailing newline) to `out`.
    ///
    /// The timestamp is written first as `"t"`, the name as `"ev"`, then the
    /// fields in recorded order — so logs are byte-stable. This produces the
    /// same bytes as the batched renderer behind
    /// [`Telemetry::events_jsonl`].
    pub fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"t\":");
        json::write_f64(out, self.time_s);
        out.push_str(",\"ev\":");
        json::write_str(out, &self.name);
        for (k, v) in &self.fields {
            out.push(',');
            json::write_str(out, k);
            out.push(':');
            match v {
                Value::U64(n) => {
                    out.push_str(&n.to_string());
                }
                Value::F64(x) => json::write_f64(out, *x),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => json::write_str(out, s),
            }
        }
        out.push('}');
    }

    /// Parse one JSONL line back into an [`Event`].
    ///
    /// Numbers become [`Value::U64`] when they are non-negative integers
    /// (lossless below 2⁵³) and [`Value::F64`] otherwise.
    pub fn parse_jsonl(line: &str) -> Result<Event, String> {
        let v = json::parse(line)?;
        let json::Json::Obj(pairs) = v else {
            return Err("event line is not a JSON object".to_string());
        };
        let mut time_s = None;
        let mut name = None;
        let mut fields = Vec::new();
        for (k, v) in pairs {
            match (k.as_str(), &v) {
                ("t", _) => {
                    time_s = Some(v.as_f64().ok_or("\"t\" is not a number")?);
                }
                ("ev", json::Json::Str(s)) => name = Some(s.clone()),
                ("ev", _) => return Err("\"ev\" is not a string".to_string()),
                _ => {
                    let val = match v {
                        json::Json::Bool(b) => Value::Bool(b),
                        json::Json::Str(s) => Value::Str(s),
                        json::Json::Num(x) => {
                            // Non-negative integers parse back as U64 so
                            // counter-like fields round-trip typed. This must
                            // cover wall-clock nanos (~2^60; the parse into
                            // f64 already cost the low bits, converting here
                            // loses nothing further).
                            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                            if x >= 0.0 && x.fract() == 0.0 && x < u64::MAX as f64 {
                                Value::U64(x as u64)
                            } else {
                                Value::F64(x)
                            }
                        }
                        other => {
                            return Err(format!("field {k:?} has unsupported type: {other:?}"))
                        }
                    };
                    fields.push((k, val));
                }
            }
        }
        Ok(Event {
            time_s: time_s.ok_or("event line is missing \"t\"")?,
            name: name.ok_or("event line is missing \"ev\"")?,
            fields,
        })
    }
}

/// Derived per-hop statistics, kept in fixed slots instead of name-keyed map
/// entries so the per-hop cost is a handful of integer adds. They surface
/// under their historical names (`hop.events`, `hop.bytes`,
/// `hop.retransmits`, `hop.undelivered` counters; `hop.bytes`,
/// `hop.wire_bits_per_elem` histograms) through [`Telemetry::counter`],
/// [`Telemetry::histogram`], and the summary snapshot.
#[derive(Debug, Default)]
struct HopStats {
    events: u64,
    bytes: u64,
    retransmits: u64,
    undelivered: u64,
    bytes_hist: Histogram,
    wire_bits_per_elem: Histogram,
}

/// Initial event-batch capacity claimed by a recording sink: enough for a
/// typical bench round's hop stream without growth inside the timed region.
const EVENT_BATCH: usize = 4096;
/// Initial key/value arena capacity (~12 fields per hop event).
const KV_BATCH: usize = 12 * EVENT_BATCH;

/// Shared mutable state behind a recording [`Telemetry`] handle.
#[derive(Debug)]
struct State {
    now_s: f64,
    next_seq: u64,
    events: Vec<EventRec>,
    kvs: Vec<(&'static str, CompactValue)>,
    hop: HopStats,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// `(backend, clock-kind)` tag appended to every `hop` event when set
    /// via [`Telemetry::set_transport_tag`]. `None` (the default) keeps hop
    /// events byte-identical to their pre-transport schema.
    transport_tag: Option<(Arc<str>, Arc<str>)>,
    /// When set via [`Telemetry::set_wall_clock`], every event additionally
    /// carries a `wall_ns` field with [`wall_now_ns`] at emission. Off by
    /// default — the determinism contract requires logs without wall-clock
    /// fields to stay byte-identical across same-seed runs.
    wall_clock: bool,
}

impl Default for State {
    fn default() -> Self {
        State {
            now_s: 0.0,
            next_seq: 0,
            events: Vec::with_capacity(EVENT_BATCH),
            kvs: Vec::with_capacity(KV_BATCH),
            hop: HopStats::default(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            transport_tag: None,
            wall_clock: false,
        }
    }
}

impl State {
    fn fields_of(&self, rec: &EventRec) -> &[(&'static str, CompactValue)] {
        &self.kvs[rec.field_start as usize..(rec.field_start + rec.field_len) as usize]
    }

    fn materialize(&self, rec: &EventRec) -> Event {
        Event {
            time_s: rec.time_s,
            name: rec.name.to_string(),
            fields: self
                .fields_of(rec)
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.to_value()))
                .collect(),
        }
    }

    /// Render one compact record exactly as [`Event::write_jsonl`] would
    /// render its materialized form.
    fn write_rec_jsonl(&self, rec: &EventRec, out: &mut String) {
        out.push_str("{\"t\":");
        json::write_f64(out, rec.time_s);
        out.push_str(",\"ev\":");
        json::write_str(out, rec.name);
        for (k, v) in self.fields_of(rec) {
            out.push(',');
            json::write_str(out, k);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

/// Handle to the telemetry sink: either disabled (no-op) or recording.
///
/// Clones share the same underlying state, so a handle can be stored in a
/// config struct, passed across layers, and flushed once at the end. When
/// the handle was created with a sink path, dropping the *last* clone
/// flushes the log there (best-effort; see [`Telemetry::flush_env`] for the
/// explicit, error-checked form).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<State>>>,
    /// Where [`Telemetry::flush_env`] writes the JSONL log, if anywhere.
    sink_path: Option<Arc<PathBuf>>,
}

/// Environment variable checked by [`Telemetry::from_env`]: when set to a
/// non-empty path, binaries record telemetry and flush the JSONL log there
/// (plus a `<path>.summary.json` snapshot).
pub const ENV_VAR: &str = "MARSIT_TELEMETRY";

impl Telemetry {
    /// The no-op sink: records nothing, every operation returns immediately.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A recording sink with fresh, preallocated in-memory state.
    pub fn recording() -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(State::default()))),
            sink_path: None,
        }
    }

    /// A recording sink that remembers `path` as its flush destination.
    pub fn recording_to(path: impl Into<PathBuf>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(State::default()))),
            sink_path: Some(Arc::new(path.into())),
        }
    }

    /// Recording sink if the [`ENV_VAR`] environment variable names a path,
    /// disabled otherwise.
    pub fn from_env() -> Self {
        match std::env::var(ENV_VAR) {
            Ok(path) if !path.is_empty() => Telemetry::recording_to(path),
            _ => Telemetry::disabled(),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn state(&self) -> Option<MutexGuard<'_, State>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Advance the simulated clock; subsequent events are stamped with `now_s`.
    pub fn set_time(&self, now_s: f64) {
        if let Some(mut st) = self.state() {
            st.now_s = now_s;
        }
    }

    /// Current simulated time (0.0 when disabled or never set).
    pub fn now_s(&self) -> f64 {
        self.state().map_or(0.0, |st| st.now_s)
    }

    /// Record an event stamped with the current simulated time.
    ///
    /// Hot paths should check [`Telemetry::is_enabled`] before building
    /// `fields` — a disabled sink ignores them, but the caller has already
    /// paid for the vector.
    pub fn emit(&self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        if let Some(mut st) = self.state() {
            let st = &mut *st;
            let field_start = st.kvs.len() as u32;
            st.kvs.extend(
                fields
                    .into_iter()
                    .map(|(k, v)| (k, CompactValue::from_value(v))),
            );
            if st.wall_clock {
                st.kvs.push(("wall_ns", CompactValue::U64(wall_now_ns())));
            }
            st.events.push(EventRec {
                time_s: st.now_s,
                name,
                field_start,
                field_len: st.kvs.len() as u32 - field_start,
            });
        }
    }

    /// Add `delta` to the named monotone counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(mut st) = self.state() {
            if let Some(slot) = st.counters.get_mut(name) {
                *slot += delta;
            } else {
                st.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set the named gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(mut st) = self.state() {
            if let Some(slot) = st.gauges.get_mut(name) {
                *slot = value;
            } else {
                st.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Observe one sample into the named log2-bucket histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(mut st) = self.state() {
            if let Some(h) = st.histograms.get_mut(name) {
                h.observe(value);
            } else {
                st.histograms
                    .entry(name.to_string())
                    .or_default()
                    .observe(value);
            }
        }
    }

    /// Current value of a counter (0 when disabled or never touched). The
    /// derived hop counters (`hop.events`, `hop.bytes`, `hop.retransmits`,
    /// `hop.undelivered`) are served from their fixed slots.
    pub fn counter(&self, name: &str) -> u64 {
        self.state().map_or(0, |st| {
            let derived = match name {
                "hop.events" => st.hop.events,
                "hop.bytes" => st.hop.bytes,
                "hop.retransmits" => st.hop.retransmits,
                "hop.undelivered" => st.hop.undelivered,
                _ => 0,
            };
            derived + st.counters.get(name).copied().unwrap_or(0)
        })
    }

    /// Snapshot of a histogram, if it has been observed into.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.state().and_then(|st| {
            match name {
                "hop.bytes" if st.hop.events > 0 => return Some(st.hop.bytes_hist.clone()),
                "hop.wire_bits_per_elem" if st.hop.wire_bits_per_elem.count() > 0 => {
                    return Some(st.hop.wire_bits_per_elem.clone())
                }
                _ => {}
            }
            st.histograms.get(name).cloned()
        })
    }

    /// Number of recorded events (0 when disabled — the no-op guarantee).
    pub fn event_count(&self) -> usize {
        self.state().map_or(0, |st| st.events.len())
    }

    /// Visit every recorded event in emission order without materializing a
    /// vector. Each call of `f` sees a freshly materialized [`Event`].
    pub fn for_each_event(&self, mut f: impl FnMut(&Event)) {
        if let Some(st) = self.state() {
            for rec in &st.events {
                f(&st.materialize(rec));
            }
        }
    }

    /// Materialize an owned copy of all recorded events, in emission order.
    ///
    /// This walks the compact batch and builds owned strings — call it at
    /// flush/analysis time, not inside a measured region. (The accessor is
    /// deliberately named for what it costs; there is no implicit
    /// full-vector clone on the recording path.)
    pub fn snapshot_events(&self) -> Vec<Event> {
        self.state().map_or_else(Vec::new, |st| {
            st.events.iter().map(|rec| st.materialize(rec)).collect()
        })
    }

    /// Move all recorded events out of the sink, resetting the batch (its
    /// capacity is retained) while counters, gauges, histograms, the
    /// simulated clock, and sequence accounting stay untouched.
    pub fn drain_events(&self) -> Vec<Event> {
        self.state().map_or_else(Vec::new, |mut st| {
            let st = &mut *st;
            let out = st.events.iter().map(|rec| st.materialize(rec)).collect();
            st.events.clear();
            st.kvs.clear();
            out
        })
    }

    /// Start a span at the current simulated time; finish it with
    /// [`Span::end`].
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            name,
            start_s: self.now_s(),
        }
    }

    /// The full event log as JSONL (one event object per line, trailing
    /// newline after each), rendered directly from the compact batch. Empty
    /// string when disabled.
    pub fn events_jsonl(&self) -> String {
        let Some(st) = self.state() else {
            return String::new();
        };
        // ~96 bytes is a typical hop line; reserving up front keeps the
        // flush from reallocating its way through a large log.
        let mut out = String::with_capacity(st.events.len() * 96);
        for rec in &st.events {
            st.write_rec_jsonl(rec, &mut out);
            out.push('\n');
        }
        out
    }

    /// Deterministic JSON snapshot of counters, gauges, and histogram
    /// percentiles (schema `marsit-telemetry-summary/1`).
    pub fn summary_json(&self) -> String {
        let Some(st) = self.state() else {
            return "{\"schema\":\"marsit-telemetry-summary/1\",\"events\":0,\
                    \"counters\":{},\"gauges\":{},\"histograms\":{}}\n"
                .to_string();
        };
        // Merge the fixed hop slots back under their historical names so the
        // snapshot schema is unchanged. BTreeMap keeps the key order stable.
        let mut counters: BTreeMap<&str, u64> =
            st.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        if st.hop.events > 0 {
            *counters.entry("hop.events").or_default() += st.hop.events;
            *counters.entry("hop.bytes").or_default() += st.hop.bytes;
        }
        if st.hop.retransmits > 0 {
            *counters.entry("hop.retransmits").or_default() += st.hop.retransmits;
        }
        if st.hop.undelivered > 0 {
            *counters.entry("hop.undelivered").or_default() += st.hop.undelivered;
        }
        let mut histograms: BTreeMap<&str, &Histogram> =
            st.histograms.iter().map(|(k, h)| (k.as_str(), h)).collect();
        if st.hop.events > 0 {
            histograms.insert("hop.bytes", &st.hop.bytes_hist);
        }
        if st.hop.wire_bits_per_elem.count() > 0 {
            histograms.insert("hop.wire_bits_per_elem", &st.hop.wire_bits_per_elem);
        }
        let mut out = String::from("{\"schema\":\"marsit-telemetry-summary/1\",\"events\":");
        out.push_str(&st.events.len().to_string());
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in st.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            json::write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, k);
            out.push(':');
            h.write_json(&mut out);
        }
        out.push_str("}}\n");
        out
    }

    /// Write the JSONL event log to `path`.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.events_jsonl())
    }

    /// Write the summary snapshot to `path`.
    pub fn write_summary(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.summary_json())
    }

    /// If this handle was created with a sink path ([`Telemetry::from_env`]
    /// or [`Telemetry::recording_to`]), write the JSONL log there and the
    /// summary to `<path>.summary.json`, returning the event-log path.
    pub fn flush_env(&self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = self.sink_path.as_deref() else {
            return Ok(None);
        };
        self.write_jsonl(path)?;
        let mut summary = path.as_os_str().to_owned();
        summary.push(".summary.json");
        self.write_summary(Path::new(&summary))?;
        Ok(Some(path.clone()))
    }

    /// Tag every subsequent `hop` event with the transport backend that
    /// carried it (`"simulator"`, `"threaded"`, `"process"`) and which kind
    /// of clock its run is timed on (`"simulated"` or `"real"`). Off by
    /// default, so logs from untagged runs stay byte-identical to the
    /// pre-transport schema; [`report::validate`] accepts both forms.
    pub fn set_transport_tag(&self, backend: &str, clock_kind: &str) {
        if let Some(mut st) = self.state() {
            st.transport_tag = Some((Arc::from(backend), Arc::from(clock_kind)));
        }
    }

    /// Enable (or disable) the wall clock: when on, every subsequent event
    /// carries a `wall_ns` field with [`wall_now_ns`] at emission time. Off
    /// by default — deterministic runs must never see wall-clock fields.
    /// Comparisons strip them with [`report::strip_wall_clock`].
    pub fn set_wall_clock(&self, on: bool) {
        if let Some(mut st) = self.state() {
            st.wall_clock = on;
        }
    }

    /// Whether wall-clock stamping is enabled on this sink.
    pub fn wall_clock(&self) -> bool {
        self.state().is_some_and(|st| st.wall_clock)
    }

    /// Drain all recorded events as a JSONL string (same bytes as
    /// [`Telemetry::events_jsonl`]), resetting the batch while keeping
    /// metrics and sequence accounting. This is the per-flush payload a
    /// worker streams to the hub's trace collector.
    pub fn drain_events_jsonl(&self) -> String {
        let mut out = String::new();
        self.drain_events_jsonl_into(&mut out);
        out
    }

    /// [`Telemetry::drain_events_jsonl`] appending into a caller-owned
    /// buffer — the shard-scoped batch flush: a job-server shard drains
    /// every job's events into that job's accumulated log once per
    /// scheduling tick (not once per round), reusing the log's capacity so
    /// the flush itself allocates nothing in the steady state. The bytes
    /// appended are identical to what one [`Telemetry::events_jsonl`] call
    /// at the end of the run would have produced for the same events,
    /// whatever the flush cadence.
    pub fn drain_events_jsonl_into(&self, out: &mut String) {
        if let Some(mut st) = self.state() {
            let st = &mut *st;
            out.reserve(st.events.len() * 96);
            for rec in &st.events {
                st.write_rec_jsonl(rec, out);
                out.push('\n');
            }
            st.events.clear();
            st.kvs.clear();
        }
    }

    /// The `(backend, clock-kind)` transport tag, if one is set.
    pub fn transport_tag(&self) -> Option<(String, String)> {
        self.state().and_then(|st| {
            st.transport_tag
                .as_ref()
                .map(|(b, c)| (b.as_ref().to_string(), c.as_ref().to_string()))
        })
    }

    /// Next unassigned expanded-step sequence number (scope bookkeeping).
    pub(crate) fn peek_seq(&self) -> u64 {
        self.state().map_or(0, |st| st.next_seq)
    }

    /// Raise the sequence floor to `seq` (never lowers it).
    pub(crate) fn advance_seq(&self, seq: u64) {
        if let Some(mut st) = self.state() {
            st.next_seq = st.next_seq.max(seq);
        }
    }

    /// The next unassigned expanded-step sequence number. Crash-safe
    /// serving journals this alongside a trainer snapshot: hop events
    /// carry absolute sequence numbers, so a job resumed onto a *fresh*
    /// sink after a process crash must start numbering where the dead
    /// sink left off for the concatenated log to stay byte-identical to
    /// an uninterrupted run.
    #[must_use]
    pub fn seq_floor(&self) -> u64 {
        self.peek_seq()
    }

    /// Raises this sink's sequence floor to `seq` (never lowers it) —
    /// the restore half of [`Telemetry::seq_floor`]. Call on a fresh
    /// sink before stepping a crash-restored job.
    pub fn restore_seq_floor(&self, seq: u64) {
        self.advance_seq(seq);
    }

    /// Record one wire attempt under a single lock: the `hop` event plus the
    /// derived statistics, with no allocation in the steady state. The
    /// optional [`HopTiming`] fields carry what a traced transport
    /// propagates; `None` fields are omitted entirely, so an untraced hop
    /// renders byte-identically to the legacy schema.
    pub(crate) fn record_hop_timed(
        &self,
        seq: u64,
        send: usize,
        recv: usize,
        hop: &Hop,
        timing: scope::HopTiming,
    ) {
        let Some(mut st) = self.state() else { return };
        let st = &mut *st;
        let field_start = st.kvs.len() as u32;
        st.kvs.extend([
            ("seq", CompactValue::U64(seq)),
            ("phase", CompactValue::Static(hop.phase)),
            ("step", CompactValue::U64(hop.step as u64)),
            ("send", CompactValue::U64(send as u64)),
            ("recv", CompactValue::U64(recv as u64)),
            ("seg", CompactValue::U64(hop.segment as u64)),
            ("elems", CompactValue::U64(hop.elems as u64)),
            ("bytes", CompactValue::U64(hop.bytes as u64)),
            ("attempt", CompactValue::U64(u64::from(hop.attempt))),
            ("delivered", CompactValue::Bool(hop.delivered)),
        ]);
        if let Some(r) = timing.round {
            st.kvs.push(("round", CompactValue::U64(r)));
        }
        if let Some(ns) = timing.send_ns {
            st.kvs.push(("send_ns", CompactValue::U64(ns)));
        }
        if let Some(ns) = timing.recv_ns {
            st.kvs.push(("recv_ns", CompactValue::U64(ns)));
        } else if st.wall_clock {
            st.kvs.push(("wall_ns", CompactValue::U64(wall_now_ns())));
        }
        if let Some((backend, clock)) = &st.transport_tag {
            st.kvs
                .push(("backend", CompactValue::Shared(backend.clone())));
            st.kvs.push(("clock", CompactValue::Shared(clock.clone())));
        }
        st.events.push(EventRec {
            time_s: st.now_s,
            name: "hop",
            field_start,
            field_len: st.kvs.len() as u32 - field_start,
        });
        st.hop.events += 1;
        st.hop.bytes += hop.bytes as u64;
        if hop.attempt > 1 {
            st.hop.retransmits += 1;
        }
        if !hop.delivered {
            st.hop.undelivered += 1;
        }
        st.hop.bytes_hist.observe(hop.bytes as f64);
        if hop.elems > 0 {
            st.hop
                .wire_bits_per_elem
                .observe(hop.bytes as f64 * 8.0 / hop.elems as f64);
        }
    }
}

impl Drop for Telemetry {
    /// Dropping the last clone of a path-bound recording handle flushes the
    /// log (best-effort: I/O errors on this implicit path are swallowed;
    /// call [`Telemetry::flush_env`] to observe them).
    fn drop(&mut self) {
        if let (Some(inner), Some(_)) = (&self.inner, &self.sink_path) {
            if Arc::strong_count(inner) == 1 {
                let _ = self.flush_env();
            }
        }
    }
}

/// An open span; [`Span::end`] emits a `"span"` event with the simulated
/// duration. See [`Telemetry::span`].
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start_s: f64,
}

impl Span {
    /// Close the span against `t`, emitting `{"ev":"span","span":name,
    /// "start_s":…,"dur_s":…}` with the simulated elapsed time.
    pub fn end(self, t: &Telemetry) {
        t.emit(
            "span",
            vec![
                ("span", Value::Str(self.name.to_string())),
                ("start_s", Value::F64(self.start_s)),
                ("dur_s", Value::F64(t.now_s() - self.start_s)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        t.set_time(1.0);
        t.emit("x", vec![("a", Value::U64(1))]);
        t.counter_add("c", 5);
        t.observe("h", 2.0);
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.counter("c"), 0);
        assert_eq!(t.events_jsonl(), "");
        assert!(!t.is_enabled());
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = Telemetry::recording();
        t.set_time(0.125);
        t.emit(
            "round",
            vec![
                ("round", Value::U64(3)),
                ("loss", Value::F64(0.75)),
                ("label", Value::Str("a\"b\\c\n".to_string())),
                ("ok", Value::Bool(true)),
            ],
        );
        let log = t.events_jsonl();
        let ev = Event::parse_jsonl(log.trim_end()).unwrap();
        assert_eq!(ev.time_s, 0.125);
        assert_eq!(ev.name, "round");
        assert_eq!(ev.u64_field("round"), Some(3));
        assert_eq!(ev.f64_field("loss"), Some(0.75));
        assert_eq!(ev.str_field("label"), Some("a\"b\\c\n"));
        assert_eq!(ev.bool_field("ok"), Some(true));
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::recording();
        let u = t.clone();
        u.counter_add("c", 2);
        t.counter_add("c", 3);
        assert_eq!(t.counter("c"), 5);
        assert_eq!(u.counter("c"), 5);
    }

    #[test]
    fn identical_inputs_identical_logs() {
        let run = || {
            let t = Telemetry::recording();
            for i in 0..10u64 {
                t.set_time(i as f64 * 0.1);
                t.emit(
                    "e",
                    vec![
                        ("i", Value::U64(i)),
                        ("x", Value::F64(1.0 / (i + 1) as f64)),
                    ],
                );
                t.observe("x", 1.0 / (i + 1) as f64);
            }
            (t.events_jsonl(), t.summary_json())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn summary_contains_histogram_percentiles() {
        let t = Telemetry::recording();
        for v in 1..=100 {
            t.observe("lat", f64::from(v));
        }
        let s = t.summary_json();
        let parsed = json::parse(&s).unwrap();
        let h = parsed.get("histograms").and_then(|h| h.get("lat")).unwrap();
        assert_eq!(h.get("count").and_then(json::Json::as_f64), Some(100.0));
        assert!(h.get("p50").is_some() && h.get("p99").is_some());
    }

    #[test]
    fn span_measures_simulated_time() {
        let t = Telemetry::recording();
        t.set_time(1.0);
        let sp = t.span("phase");
        t.set_time(3.5);
        sp.end(&t);
        let ev = &t.snapshot_events()[0];
        assert_eq!(ev.name, "span");
        assert_eq!(ev.f64_field("dur_s"), Some(2.5));
    }

    /// The batched renderer and the materialized per-event renderer agree
    /// byte for byte.
    #[test]
    fn batched_render_matches_materialized_render() {
        let t = Telemetry::recording();
        t.set_time(0.25);
        t.emit(
            "a",
            vec![("x", Value::U64(7)), ("s", Value::Str("hi".into()))],
        );
        t.set_time(0.5);
        t.emit(
            "b",
            vec![("f", Value::F64(0.1)), ("ok", Value::Bool(false))],
        );
        let mut expected = String::new();
        t.for_each_event(|ev| {
            ev.write_jsonl(&mut expected);
            expected.push('\n');
        });
        assert_eq!(t.events_jsonl(), expected);
    }

    /// `drain_events` moves events out, keeps counters, and resets the batch.
    #[test]
    fn drain_resets_the_batch_but_not_the_metrics() {
        let t = Telemetry::recording();
        t.emit("e", vec![("i", Value::U64(1))]);
        t.counter_add("c", 9);
        let drained = t.drain_events();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].u64_field("i"), Some(1));
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.events_jsonl(), "");
        assert_eq!(t.counter("c"), 9);
        t.emit("e", vec![("i", Value::U64(2))]);
        assert_eq!(t.snapshot_events()[0].u64_field("i"), Some(2));
    }

    /// Dropping the last clone of a path-bound handle flushes the JSONL log
    /// and summary snapshot, with exactly the bytes the live handle renders.
    #[test]
    fn drop_of_last_clone_flushes_to_sink_path() {
        let dir = std::env::temp_dir().join(format!("marsit-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop.jsonl");
        let (expected_log, expected_summary) = {
            let t = Telemetry::recording_to(&path);
            t.set_time(0.5);
            t.emit("e", vec![("i", Value::U64(7))]);
            t.counter_add("c", 3);
            let clone = t.clone();
            drop(t);
            // An earlier clone dropping must NOT flush (state still live)...
            assert!(!path.exists(), "flush fired before the last clone dropped");
            (clone.events_jsonl(), clone.summary_json())
        }; // ...but the last one here must.
        let log = std::fs::read_to_string(&path).expect("drop flushed the event log");
        assert_eq!(log, expected_log);
        let summary_path = dir.join("drop.jsonl.summary.json");
        let summary = std::fs::read_to_string(&summary_path).expect("drop flushed the summary");
        assert_eq!(summary, expected_summary);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A pathless recording handle flushes nowhere on drop.
    #[test]
    fn drop_without_sink_path_is_silent() {
        let t = Telemetry::recording();
        t.emit("e", vec![]);
        assert_eq!(t.flush_env().unwrap(), None);
        drop(t); // must not panic or touch the filesystem
    }

    /// u64 fields render without the heap round-trip `to_string` takes.
    #[test]
    fn u64_formatter_matches_std() {
        for n in [0u64, 1, 9, 10, 99, 12345, u64::MAX] {
            let mut buf = itoa_buf();
            assert_eq!(write_u64(&mut buf, n), n.to_string());
        }
    }
}
