//! Condensed Figure 3: the accuracy / time / bits trade-off of the
//! full-precision period `K` on the CIFAR-10 proxy.
//!
//! ```text
//! cargo run --release --example k_sweep
//! ```

use marsit::core::SyncSchedule;
use marsit::prelude::*;

fn main() {
    println!("== K sweep on AlexNet-proxy / CIFAR-10-proxy, ring(8) (Figure 3) ==\n");
    println!(
        "{:<8} {:>12} {:>10} {:>12}",
        "K", "sim time(s)", "acc (%)", "bits/elem"
    );
    let ks: [Option<u32>; 5] = [Some(1), Some(25), Some(50), Some(100), None];
    for k in ks {
        let mut cfg = TrainConfig::new(
            Workload::AlexNetCifar10,
            Topology::ring(8),
            StrategyKind::Marsit { k },
        );
        cfg.rounds = 200;
        cfg.train_examples = 8192;
        cfg.test_examples = 2048;
        cfg.batch_per_worker = 32;
        cfg.local_lr = 0.01;
        cfg.marsit_global_lr = 0.002;
        cfg.eval_every = 50;
        let report = train(&cfg);
        let label = k.map_or("∞".to_owned(), |k| k.to_string());
        println!(
            "{:<8} {:>12.2} {:>10.2} {:>12.2}",
            label,
            report.total_time.total(),
            report.final_eval.accuracy * 100.0,
            report.avg_wire_bits_per_element,
        );
        // The closed-form bits column of Fig 3 for reference.
        let schedule = k.map_or(SyncSchedule::never(), SyncSchedule::every);
        debug_assert!(
            (schedule.average_bits_per_coord() - report.avg_wire_bits_per_element).abs() < 2.0
        );
    }
    println!(
        "\nShape to expect (paper Fig 3b): K=1 costs 32 bits and the most time;\n\
         growing K trades a little accuracy for a payload approaching 1 bit."
    );
}
