//! Figure 2 as text: the Marsit workflow under a 3-worker ring.
//!
//! Traces one one-bit synchronization hop by hop — reduce (R) steps combine
//! via the `⊙` operator, gather (G) steps circulate the consensus segments —
//! then shows the global update and the compensation residuals.
//!
//! ```text
//! cargo run --release --example workflow_trace
//! ```

use marsit::collectives::ring::{ring_allreduce_onebit, segment_ranges};
use marsit::core::ominus::combine_weighted_assign;
use marsit::prelude::*;

fn bits(v: &SignVec) -> String {
    v.iter().map(|b| if b { '+' } else { '-' }).collect()
}

fn main() {
    let m = 3;
    let d = 12;
    println!("== Marsit workflow under ring({m}), D = {d} (Figure 2) ==\n");

    // Three workers with gradient + compensation folded into one vector.
    let mut rng = FastRng::new(2022, 0);
    let updates: Vec<Vec<f32>> = (0..m)
        .map(|_| (0..d).map(|_| rng.next_f64() as f32 - 0.5).collect())
        .collect();
    let signs: Vec<SignVec> = updates.iter().map(|u| SignVec::from_signs(u)).collect();

    println!("Local sign vectors (bit = sign of η_l·g + c):");
    for (w, s) in signs.iter().enumerate() {
        println!("  worker {}: {}", w + 1, bits(s));
    }
    let segs = segment_ranges(d, m);
    println!(
        "\nSegments: {:?}\n",
        segs.iter().map(|r| (r.start, r.end)).collect::<Vec<_>>()
    );

    let mut phase = 0usize;
    let mut combine_rng = FastRng::new(7, 0);
    let (consensus, trace) = ring_allreduce_onebit(&signs, |recv, local, ctx| {
        if ctx.step != phase {
            phase = ctx.step;
        }
        let before = bits(local);
        combine_weighted_assign(
            recv,
            ctx.received_count,
            local,
            ctx.local_count,
            &mut combine_rng,
        );
        println!(
            "R{} seg {}: worker {} combines received {} (x{}) ⊙ local {} (x1) -> {}",
            ctx.step + 1,
            ctx.segment,
            ctx.receiver + 1,
            bits(recv),
            ctx.received_count,
            before,
            bits(local),
        );
    });

    println!(
        "\nGather phase: each reduced segment circulates {} hops (1 bit/coord).",
        m - 1
    );
    println!("Consensus sign vector: {}", bits(&consensus));
    println!(
        "Wire: {} steps, {} bytes total ({} bits/coordinate/hop).",
        trace.num_steps(),
        trace.total_bytes(),
        1
    );

    // The same round through the full Algorithm 1, with compensation.
    let cfg = MarsitConfig::new(SyncSchedule::never(), 0.05, 7);
    let mut marsit = Marsit::new(cfg, m, d);
    let out = marsit.synchronize(&updates, Topology::ring(m));
    println!("\nGlobal update g_t = η_s·σ (η_s = 0.05):");
    println!(
        "  [{}]",
        out.global_update
            .iter()
            .map(|g| format!("{g:+.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("\nCompensation residuals c_(t+1) = g_t^(m) − g_t (norms):");
    for w in 0..m {
        println!(
            "  worker {}: ‖c‖² = {:.4}",
            w + 1,
            marsit.compensation(w).norm_sq()
        );
    }
}
