//! Probing the paper's IID assumption.
//!
//! Marsit's global compensation applies an *identical* residual at every
//! worker, justified by "the independent and identical data distribution on
//! cloud training" (Section 4.1.3). This example breaks that assumption
//! with Dirichlet label-skewed shards and measures the cost.
//!
//! ```text
//! cargo run --release --example non_iid
//! ```

use marsit::prelude::*;

fn run(strategy: StrategyKind, skew: Option<f64>) -> TrainReport {
    let mut cfg = TrainConfig::new(Workload::AlexNetMnist, Topology::ring(8), strategy);
    cfg.rounds = 250;
    cfg.train_examples = 8192;
    cfg.test_examples = 2048;
    cfg.batch_per_worker = 32;
    cfg.local_lr = if matches!(strategy, StrategyKind::Psgd) {
        0.1
    } else {
        0.01
    };
    cfg.marsit_global_lr = 0.002;
    cfg.eval_every = 0;
    cfg.data_skew = skew;
    train(&cfg)
}

fn main() {
    println!("== Marsit under IID vs label-skewed shards (ring(8), MNIST proxy) ==\n");
    println!(
        "{:<14} {:>10} {:>14} {:>14}",
        "strategy", "IID acc", "Dir(1.0) acc", "Dir(0.1) acc"
    );
    for strategy in [
        StrategyKind::Psgd,
        StrategyKind::Marsit { k: Some(50) },
        StrategyKind::Marsit { k: None },
        StrategyKind::SignMajority,
    ] {
        let iid = run(strategy, None);
        let mild = run(strategy, Some(1.0));
        let severe = run(strategy, Some(0.1));
        println!(
            "{:<14} {:>9.2}% {:>13.2}% {:>13.2}%",
            iid.strategy_label,
            iid.final_eval.accuracy * 100.0,
            mild.final_eval.accuracy * 100.0,
            severe.final_eval.accuracy * 100.0,
        );
    }
    println!(
        "\nExpected: PSGD is indifferent to skew (exact averaging); the sign\n\
         methods lose accuracy as shards skew, and Marsit's uniform compensation\n\
         is stressed exactly as Section 4.1.3's IID argument predicts."
    );
}
