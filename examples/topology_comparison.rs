//! Per-round phase breakdown of every strategy under RAR, TAR, and PS
//! (the shape of Figure 5), priced on the ResNet-50 logical profile.
//!
//! ```text
//! cargo run --release --example topology_comparison
//! ```

use marsit::prelude::*;
use marsit::trainsim::TimingModel;

fn main() {
    let workload = Workload::ResNet50ImageNet;
    println!(
        "== Per-round time breakdown, {} ({} logical parameters), M = 16 ==\n",
        workload.label(),
        workload.logical_params()
    );

    let strategies = [
        StrategyKind::Psgd,
        StrategyKind::SignMajority,
        StrategyKind::EfSign,
        StrategyKind::Ssdm,
        StrategyKind::Cascading,
        StrategyKind::Marsit { k: None },
    ];
    for topology in [
        Topology::ring(16),
        Topology::square_torus(16),
        Topology::star(16),
    ] {
        println!("--- {} ({topology}) ---", topology.short_name());
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12}",
            "strategy", "compute(ms)", "codec(ms)", "comm(ms)", "total(ms)"
        );
        for strategy in strategies {
            if matches!(strategy, StrategyKind::Marsit { .. })
                && matches!(topology, Topology::Star { .. })
            {
                println!("{:<12} {:>51}", strategy.label(), "(not defined under PS)");
                continue;
            }
            let model = TimingModel {
                rates: RateProfile::public_cloud(),
                logical_d: workload.logical_params(),
                topology,
                flops_per_sample: workload.flops_per_sample(),
                batch_per_worker: workload.paper_batch_size() / 16,
                overlap: true,
            };
            let p = model.round_time(strategy, false);
            println!(
                "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                strategy.label(),
                p.compute_s * 1e3,
                p.compression_s * 1e3,
                p.communication_s * 1e3,
                p.total() * 1e3
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper Fig 1a / Fig 5): RAR beats PS without compression;\n\
         cascading pays a huge codec bill; the integer-sum MAR baselines pay growing\n\
         transmission; Marsit's communication bar is the smallest, and TAR shortens\n\
         every method's communication relative to RAR."
    );
}
