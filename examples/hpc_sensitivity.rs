//! Sensitivity study: the paper scopes Marsit to *network-intensive* HPC
//! systems such as public clouds. On a fast HPC interconnect the
//! communication share of a round shrinks and so does the value of one-bit
//! compression — this example quantifies that boundary.
//!
//! ```text
//! cargo run --release --example hpc_sensitivity
//! ```

use marsit::prelude::*;
use marsit::trainsim::TimingModel;

fn main() {
    let workload = Workload::ResNet50ImageNet;
    let m = 16;
    println!(
        "== Where does one-bit compression pay off? {} over ring({m}) ==\n",
        workload.label()
    );
    println!(
        "{:<16} {:>16} {:>16} {:>14} {:>14}",
        "network", "PSGD round (ms)", "Marsit round(ms)", "round speedup", "comm fraction"
    );
    for (name, rates) in [
        ("public cloud", RateProfile::public_cloud()),
        ("HPC 100Gb/s", RateProfile::hpc()),
    ] {
        let model = TimingModel {
            rates,
            logical_d: workload.logical_params(),
            topology: Topology::ring(m),
            flops_per_sample: workload.flops_per_sample(),
            batch_per_worker: workload.paper_batch_size() / m,
            overlap: true,
        };
        let psgd = model.round_time(StrategyKind::Psgd, true);
        let marsit = model.round_time(StrategyKind::Marsit { k: None }, false);
        println!(
            "{:<16} {:>16.1} {:>16.1} {:>13.2}x {:>13.0}%",
            name,
            psgd.total() * 1e3,
            marsit.total() * 1e3,
            psgd.total() / marsit.total(),
            psgd.communication_fraction() * 100.0,
        );
    }
    println!(
        "\nOn the cloud profile communication dominates PSGD's round, so the\n\
         one-bit payload buys a large speedup; on the HPC profile compute\n\
         dominates and the gap narrows — matching the paper's scoping to\n\
         network-intensive systems (Section 1).\n"
    );

    // Bandwidth sweep: where the crossover happens.
    println!("Round speedup vs link bandwidth (25 µs latency):");
    for gbps in [1.0f64, 5.0, 10.0, 25.0, 50.0, 100.0] {
        let rates = RateProfile {
            link: LinkModel::new(25e-6, gbps * 1.25e8),
            ..RateProfile::public_cloud()
        };
        let model = TimingModel {
            rates,
            logical_d: workload.logical_params(),
            topology: Topology::ring(m),
            flops_per_sample: workload.flops_per_sample(),
            batch_per_worker: workload.paper_batch_size() / m,
            overlap: true,
        };
        let psgd = model.round_time(StrategyKind::Psgd, true).total();
        let marsit = model
            .round_time(StrategyKind::Marsit { k: None }, false)
            .total();
        let bar = "*".repeat(((psgd / marsit) * 4.0).round() as usize);
        println!("  {gbps:>5} Gb/s: {:>5.2}x {bar}", psgd / marsit);
    }
}
