//! Tour of the gradient compressors on one realistic gradient: wire size,
//! reconstruction bias, and the error-feedback memory at work.
//!
//! ```text
//! cargo run --release --example compression_zoo
//! ```

use marsit::compress::{Compressor, EfSign, PlainSign, SignSumVec, Ssdm};
use marsit::prelude::*;
use marsit::tensor::stats;

fn main() {
    let d = 4096;
    let mut rng = FastRng::new(11, 0);
    let grad = Tensor::gaussian(1, d, 0.02, &mut rng).into_vec();
    println!(
        "== Compressor zoo on a {d}-dim gradient, ‖g‖₂ = {:.4} ==\n",
        stats::norm_l2(&grad)
    );

    println!(
        "{:<12} {:>12} {:>14} {:>22}",
        "compressor", "wire bits", "bits/coord", "decode ℓ2 error"
    );
    let mut compressors: Vec<Box<dyn Compressor>> = vec![
        Box::new(PlainSign::new()),
        Box::new(EfSign::new()),
        Box::new(Ssdm::new()),
    ];
    for comp in &mut compressors {
        let msg = comp.compress(&grad, &mut rng);
        let decoded = msg.to_values();
        let err = stats::dist_sq(&decoded, &grad).sqrt();
        println!(
            "{:<12} {:>12} {:>14.2} {:>22.4}",
            comp.name(),
            msg.wire_bits(),
            msg.wire_bits() as f64 / d as f64,
            err
        );
    }
    println!(
        "(fp32 baseline: {} bits, 32.00 bits/coord, error 0)\n",
        32 * d
    );

    // Error feedback in action: cumulative decoded ≈ cumulative gradient.
    println!("EF-signSGD memory over 100 identical rounds:");
    let mut ef = EfSign::new();
    let mut applied = vec![0.0f32; d];
    for round in 0..100 {
        let msg = ef.compress(&grad, &mut rng);
        for (a, v) in applied.iter_mut().zip(msg.to_values()) {
            *a += v;
        }
        if [0, 9, 99].contains(&round) {
            let target: Vec<f32> = grad.iter().map(|&g| g * (round + 1) as f32).collect();
            let rel = stats::dist_sq(&applied, &target).sqrt() / f64::from(stats::norm_l2(&target));
            println!(
                "  after round {:>3}: relative error of applied sum = {rel:.4}",
                round + 1
            );
        }
    }

    // The MAR bit-growth problem (Section 3.1): integer sign sums widen.
    println!("\nBit growth when sign payloads are summed along a MAR chain:");
    let mut sums = SignSumVec::zeros(d);
    let mut rng2 = FastRng::new(3, 0);
    for workers in 1..=16 {
        sums.add_signs(&SignVec::bernoulli_uniform(d, 0.5, &mut rng2));
        if [1, 2, 4, 8, 16].contains(&workers) {
            println!(
                "  {workers:>2} workers folded: fixed-width {} bits/coord, Elias {:.2} bits/coord",
                SignSumVec::bits_per_coord(workers as u32),
                sums.elias_bits() as f64 / d as f64
            );
        }
    }
    println!("\nMarsit's ⊙ keeps every hop at exactly 1 bit/coord instead.");
}
