//! The paper's motivating experiment (Table 1, condensed): cascading
//! compression degrades with worker count while plain PSGD improves.
//!
//! ```text
//! cargo run --release --example cascading_divergence
//! ```

use marsit::prelude::*;

fn run(strategy: StrategyKind, m: usize) -> TrainReport {
    let mut cfg = TrainConfig::new(Workload::AlexNetMnist, Topology::ring(m), strategy);
    cfg.rounds = 150;
    cfg.train_examples = 4096;
    cfg.test_examples = 1024;
    cfg.batch_per_worker = 32;
    cfg.local_lr = 0.03;
    cfg.optimizer = OptimizerKind::Sgd;
    cfg.eval_every = 25;
    train(&cfg)
}

fn main() {
    println!("== Cascading compression vs no compression (Table 1, condensed) ==\n");
    println!(
        "{:<24} {:>4} {:>10} {:>12} {:>12}",
        "method", "M", "acc (%)", "match rate", "sim time (s)"
    );
    for m in [3usize, 8] {
        for (name, strategy) in [
            ("cascading compression", StrategyKind::Cascading),
            ("no compression (PSGD)", StrategyKind::Psgd),
        ] {
            let r = run(strategy, m);
            let avg_match =
                r.records.iter().map(|x| x.matching_rate).sum::<f64>() / r.records.len() as f64;
            println!(
                "{:<24} {:>4} {:>10.2} {:>12.3} {:>12.2}{}",
                name,
                m,
                r.final_eval.accuracy * 100.0,
                avg_match,
                r.total_time.total(),
                if r.diverged { "  (DIVERGED)" } else { "" },
            );
        }
    }
    println!(
        "\nAs in the paper: more workers help PSGD but hurt the cascade — every\n\
         extra hop re-quantizes an already-quantized aggregate, so the final\n\
         signs decorrelate from the true mean (the matching-rate column)."
    );
}
