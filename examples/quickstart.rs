//! Quickstart: train a model with one-bit Marsit synchronization and compare
//! against full-precision PSGD on the same workload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `MARSIT_TELEMETRY=path.jsonl` to capture the first (Marsit-50) run's
//! event log for `telemetry_report`.

use marsit::prelude::*;

fn main() {
    let topology = Topology::ring(8);
    println!("== Marsit quickstart: AlexNet-proxy / MNIST-proxy over {topology} ==\n");

    let mut cfg = TrainConfig::new(
        Workload::AlexNetMnist,
        topology,
        StrategyKind::Marsit { k: Some(50) },
    );
    cfg.rounds = 200;
    cfg.train_examples = 8192;
    cfg.test_examples = 2048;
    cfg.batch_per_worker = 32;
    cfg.optimizer = OptimizerKind::Momentum(0.9);
    cfg.eval_every = 50;

    // Record only the first run when MARSIT_TELEMETRY is set — a second
    // training run would restart the simulated clock mid-log.
    let tel = Telemetry::from_env();
    cfg.telemetry = tel.clone();

    let mut reports = Vec::new();
    // Per-strategy stepsizes, tuned as the paper tunes its grid: Marsit's
    // η_s must track the per-coordinate scale of the intended updates so the
    // compensation stays bounded; PSGD takes a conventional SGD rate.
    for (strategy, local_lr) in [
        (StrategyKind::Marsit { k: Some(50) }, 0.01),
        (StrategyKind::Marsit { k: None }, 0.01),
        (StrategyKind::Psgd, 0.1),
    ] {
        cfg.strategy = strategy;
        cfg.local_lr = local_lr;
        cfg.marsit_global_lr = 0.002;
        let report = train(&cfg);
        cfg.telemetry = Telemetry::disabled();
        println!(
            "{:<12} acc {:>6.2}%  sim-time {:>7.2}s  traffic {:>8.1} MiB  wire width {:>5.2} bits/elem",
            report.strategy_label,
            report.final_eval.accuracy * 100.0,
            report.total_time.total(),
            report.total_bytes as f64 / (1 << 20) as f64,
            report.avg_wire_bits_per_element,
        );
        reports.push(report);
    }

    let marsit = &reports[0];
    let psgd = &reports[2];
    println!(
        "\nMarsit-50 moves {:.1}x less data and finishes {:.2}x faster than PSGD \
         at {:+.2} pp accuracy.",
        psgd.total_bytes as f64 / marsit.total_bytes as f64,
        psgd.total_time.total() / marsit.total_time.total(),
        (marsit.final_eval.accuracy - psgd.final_eval.accuracy) * 100.0,
    );
    if let Some(path) = tel.flush_env().expect("write telemetry log") {
        println!("wrote telemetry to {}", path.display());
    }
}
