//! The paper's extension claim, demonstrated: "Marsit can be easily
//! extended to other all-reduce paradigms including segmented-ring
//! all-reduce and tree all-reduce" — plus the gossip paradigm the
//! introduction rules out.
//!
//! ```text
//! cargo run --release --example extension_paradigms
//! ```

use marsit::collectives::ring::ring_allreduce_onebit;
use marsit::collectives::segring::segring_allreduce_onebit;
use marsit::collectives::tree::tree_allreduce_onebit;
use marsit::core::ominus::combine_weighted_assign;
use marsit::prelude::*;
use marsit::trainsim::train_gossip;

fn main() {
    one_bit_over_every_paradigm();
    gossip_vs_marsit();
}

/// The same worker sign vectors, all-reduced with ⊙ over three different
/// multi-hop paradigms: each stays one bit per hop and each is an unbiased
/// estimator of the mean sign.
fn one_bit_over_every_paradigm() {
    let m = 8;
    let d = 4096;
    let mut seed_rng = FastRng::new(1, 0);
    let signs: Vec<SignVec> = (0..m)
        .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut seed_rng))
        .collect();

    println!("== One-bit ⊙ all-reduce over three paradigms (M = {m}, D = {d}) ==\n");
    println!(
        "{:<18} {:>7} {:>12} {:>16}",
        "paradigm", "steps", "total bytes", "E[bit] error"
    );
    let trials = 400u64;
    for paradigm in ["ring (RAR)", "segmented ring", "binary tree"] {
        let mut total_steps = 0;
        let mut total_bytes = 0;
        let mut ones = vec![0u32; d];
        for trial in 0..trials {
            let mut rng = FastRng::new(100 + trial, 0);
            let mut combine =
                |r: &SignVec, l: &mut SignVec, ctx: marsit::collectives::CombineCtx| {
                    combine_weighted_assign(r, ctx.received_count, l, ctx.local_count, &mut rng);
                };
            let (out, trace) = match paradigm {
                "ring (RAR)" => ring_allreduce_onebit(&signs, &mut combine),
                "segmented ring" => segring_allreduce_onebit(&signs, 4, &mut combine),
                _ => tree_allreduce_onebit(&signs, &mut combine),
            };
            total_steps = trace.num_steps();
            total_bytes = trace.total_bytes();
            for (j, o) in ones.iter_mut().enumerate() {
                *o += u32::from(out.get(j));
            }
        }
        // Mean absolute deviation of E[bit] from the true mean sign rate.
        let mut err = 0.0;
        for (j, &o) in ones.iter().enumerate() {
            let measured = f64::from(o) / trials as f64;
            let expected = signs.iter().filter(|v| v.get(j)).count() as f64 / m as f64;
            err += (measured - expected).abs();
        }
        println!(
            "{:<18} {:>7} {:>12} {:>16.4}",
            paradigm,
            total_steps,
            total_bytes,
            err / d as f64
        );
    }
    println!(
        "\nAll three stay unbiased because the weighted ⊙ accepts merges of\n\
         arbitrary aggregate sizes — the tree merges subtrees, the torus merges\n\
         row aggregates, Eq. (2) is the chain special case.\n"
    );
}

/// Why the paper builds on all-reduce instead of gossip.
fn gossip_vs_marsit() {
    println!("== Gossip vs Marsit at the same round budget (MNIST proxy) ==\n");
    let m = 8;
    let rounds = 150;
    let mut cfg = TrainConfig::new(
        Workload::AlexNetMnist,
        Topology::ring(m),
        StrategyKind::Marsit { k: None },
    );
    cfg.rounds = rounds;
    cfg.train_examples = 4096;
    cfg.test_examples = 1024;
    cfg.batch_per_worker = 32;
    cfg.local_lr = 0.01;
    cfg.marsit_global_lr = 0.002;
    cfg.eval_every = 0;
    let marsit = train(&cfg);

    let mut gossip_cfg = cfg.clone();
    gossip_cfg.local_lr = 0.05;
    gossip_cfg.optimizer = OptimizerKind::Sgd;
    let gossip = train_gossip(&gossip_cfg);

    println!(
        "Marsit (1 bit/hop):        acc {:>6.2}%  traffic {:>7.1} MiB",
        marsit.final_eval.accuracy * 100.0,
        marsit.total_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "Gossip (fp32 neighbours):  acc {:>6.2}%  consensus error {:.2e}",
        gossip.final_eval.accuracy * 100.0,
        gossip.final_consensus_error
    );
    println!(
        "\nGossip never reaches consensus (its replicas still disagree at the end)\n\
         and mixes at O(1/M²) on a ring — the introduction's reason to prefer MAR."
    );
}
