//! The job server's bit-exactness guarantee, attacked from every angle.
//!
//! The scheduler's contract is absolute: no matter how jobs are mixed onto
//! shards, how often they are preempted, how many times they migrate, or
//! whose recycled workspace they adopt, every job's final report and
//! telemetry log must be **byte-identical** to a solo run of the same spec
//! on a dedicated thread. These tests drive random job mixes, shard counts,
//! and seeded preemption/migration schedules through the server and verify
//! exactly that — plus the crash-mid-migration path, where a written
//! snapshot is restored on a different OS thread after the source state is
//! gone.

use marsit::models::Workload;
use marsit::serve::{
    run_solo, JobServer, JobSpec, MigrationPolicy, ServeConfig, WorkspaceKey, WorkspacePool,
};
use marsit::simnet::{FaultPlan, Topology};
use marsit::telemetry::report::{parse_jsonl, strip_wall_clock};
use marsit::telemetry::Telemetry;
use marsit::trainsim::{TrainSnapshot, TrainerState};
use proptest::prelude::*;

/// A property-scale job: a few rounds on tiny data so each case stays fast.
fn tiny_spec(name: &str, case: u64, shape: u64) -> JobSpec {
    let (workload, topology) = match shape % 3 {
        0 => (Workload::AlexNetMnist, Topology::ring(4)),
        1 => (Workload::ResNet20Cifar10, Topology::torus(2, 2)),
        _ => (Workload::AlexNetMnist, Topology::ring(8)),
    };
    let mut spec = JobSpec::new(name, workload, topology);
    spec.rounds = 5;
    spec.seed = case.wrapping_mul(0x9E37_79B9) ^ shape;
    spec.train_examples = 128;
    spec.test_examples = 32;
    spec.k = if shape.is_multiple_of(2) {
        Some(3)
    } else {
        None
    };
    if shape % 4 == 3 {
        spec.fault_plan = FaultPlan::seeded(case ^ 0xFA_17).with_link_drop(0.05);
    }
    spec
}

proptest! {
    /// Random (job mix × shard count × seeded preemption/migration
    /// schedule): every job's report and telemetry log are byte-identical
    /// to its solo run.
    #[test]
    fn served_jobs_are_byte_identical_to_solo_runs(
        case in any::<u64>(),
        jobs in 2usize..5,
        shards in 1usize..4,
        tick in 1usize..4,
    ) {
        let mut cfg = ServeConfig::new(shards);
        cfg.tick_rounds = tick;
        cfg.pool_cap_per_key = 2;
        // An aggressive seeded schedule: roughly every other tick tries to
        // move the job to a random other shard.
        cfg.migration = MigrationPolicy::Seeded { seed: case, per_mille: 500 };
        let mut handle = JobServer::start(cfg);
        for i in 0..jobs {
            handle.submit(tiny_spec(&format!("p{i}"), case, case >> 8 | i as u64));
        }
        let report = handle.finish();
        prop_assert_eq!(report.outcomes.len(), jobs);
        for outcome in &report.outcomes {
            let solo = run_solo(&outcome.spec);
            prop_assert_eq!(
                format!("{:?}", outcome.report),
                format!("{:?}", solo.report),
                "report diverged for {} (migrations: {}, path {:?})",
                outcome.spec.name, outcome.migrations, outcome.shard_path
            );
            prop_assert_eq!(
                &outcome.log, &solo.log,
                "telemetry bytes diverged for {}", outcome.spec.name
            );
            // Belt and braces: the stripped event streams (wall-clock
            // fields zeroed) must also parse and compare equal.
            let mut served = parse_jsonl(&outcome.log).expect("served log parses");
            let mut solo_ev = parse_jsonl(&solo.log).expect("solo log parses");
            strip_wall_clock(&mut served);
            strip_wall_clock(&mut solo_ev);
            prop_assert_eq!(served, solo_ev);
        }
    }
}

/// Crash mid-migration: the snapshot was written (the migration wire
/// format — serialized snapshot JSON plus the job's telemetry handle and
/// flushed log), and the shard that owned the live state died before the
/// hand-off completed. A fresh OS thread — a stand-in for the surviving
/// shard that picks the job back up, exactly the scheduler's send-failure
/// recovery path — restores from the written bytes alone, adopts a dirty
/// pooled workspace from a completely different job, and finishes the run.
/// Report and concatenated log must match an uninterrupted solo run
/// exactly.
#[test]
fn crash_mid_migration_restores_on_another_shard() {
    let spec = {
        let mut s = JobSpec::new("crashed", Workload::AlexNetMnist, Topology::ring(4));
        s.rounds = 10;
        s.seed = 77;
        s.train_examples = 256;
        s.test_examples = 64;
        s.k = Some(4);
        s
    };
    let solo = run_solo(&spec);

    // Source shard: run 6 rounds, flush telemetry, write the snapshot.
    let tel = Telemetry::recording();
    let cfg = spec.to_train_config(tel.clone());
    let mut state = TrainerState::new(&cfg);
    for _ in 0..6 {
        state.step();
    }
    let snapshot_json = state.snapshot().to_json();
    let mut log = String::new();
    tel.drain_events_jsonl_into(&mut log);
    drop(state); // the crash: live trainer state and workspace are gone
    drop(cfg);

    // A dirty workspace from an unrelated job, waiting in the target
    // shard's pool.
    let mut pool = WorkspacePool::new(2);
    {
        let donor = {
            let mut s = JobSpec::new("donor", Workload::AlexNetMnist, Topology::ring(4));
            s.rounds = 3;
            s.seed = 991;
            s.train_examples = 128;
            s.test_examples = 32;
            s
        };
        let donor_cfg = donor.to_train_config(Telemetry::disabled());
        let mut donor_state = TrainerState::new(&donor_cfg);
        while !donor_state.is_done() {
            donor_state.step();
        }
        let key = WorkspaceKey::new(donor_state.model_dim(), donor.topology);
        let handle = donor_state.release_workspace().expect("marsit releases");
        pool.checkin(key, handle);
    }

    // Target shard: restore on a different OS thread from the written
    // bytes, adopt the dirty workspace, run to completion.
    let spec2 = spec.clone();
    let (report, log) = std::thread::spawn(move || {
        let cfg = spec2.to_train_config(tel.clone());
        let snapshot = TrainSnapshot::from_json(&snapshot_json).expect("snapshot parses");
        let mut state = TrainerState::restore(&cfg, &snapshot);
        let key = WorkspaceKey::new(state.model_dim(), spec2.topology);
        let handle = pool.checkout(key).expect("donor workspace pooled");
        state.adopt_workspace(handle);
        let mut log = log;
        while !state.is_done() {
            state.step();
        }
        let report = state.finish();
        tel.drain_events_jsonl_into(&mut log);
        (report, log)
    })
    .join()
    .expect("target shard thread");

    assert_eq!(
        format!("{report:?}"),
        format!("{:?}", solo.report),
        "crash-recovered report must match the uninterrupted run"
    );
    assert_eq!(
        log, solo.log,
        "concatenated telemetry across the crash must be byte-identical"
    );
}

/// Adopting a workspace dirtied by a different shape (same d, different
/// worker count / topology class is a different key, so same-key here) and
/// by a job with different data never changes an output bit.
#[test]
fn adopted_dirty_workspace_is_bit_invisible() {
    let mk = |name: &str, seed: u64| {
        let mut s = JobSpec::new(name, Workload::AlexNetMnist, Topology::ring(4));
        s.rounds = 6;
        s.seed = seed;
        s.train_examples = 128;
        s.test_examples = 32;
        s
    };
    // Reference: job B from a cold workspace.
    let reference = run_solo(&mk("b", 5));

    // Job A runs first and donates its workspace; B adopts it mid-pool.
    let a_cfg = mk("a", 1).to_train_config(Telemetry::disabled());
    let mut a = TrainerState::new(&a_cfg);
    while !a.is_done() {
        a.step();
    }
    let handle = a.release_workspace().expect("marsit releases");

    let spec_b = mk("b", 5);
    let tel = Telemetry::recording();
    let b_cfg = spec_b.to_train_config(tel.clone());
    let mut b = TrainerState::new(&b_cfg);
    b.adopt_workspace(handle);
    while !b.is_done() {
        b.step();
    }
    let report = b.finish();
    let mut log = String::new();
    tel.drain_events_jsonl_into(&mut log);

    assert_eq!(format!("{report:?}"), format!("{:?}", reference.report));
    assert_eq!(log, reference.log);
}

/// The batched (per-tick) telemetry flush produces the same bytes as any
/// other flush cadence — here, per-round flushing vs one final drain.
#[test]
fn flush_cadence_never_changes_the_bytes() {
    let spec = {
        let mut s = JobSpec::new("cadence", Workload::AlexNetMnist, Topology::ring(4));
        s.rounds = 6;
        s.seed = 13;
        s.train_examples = 128;
        s.test_examples = 32;
        s
    };
    // Per-round flushes, concatenated.
    let tel = Telemetry::recording();
    let cfg = spec.to_train_config(tel.clone());
    let mut state = TrainerState::new(&cfg);
    let mut per_round = String::new();
    while !state.is_done() {
        state.step();
        tel.drain_events_jsonl_into(&mut per_round);
    }
    let _ = state.finish();
    tel.drain_events_jsonl_into(&mut per_round);

    let one_drain = run_solo(&spec).log;
    assert_eq!(per_round, one_drain);
}
