//! Telemetry acceptance tests: the observability layer must be invisible
//! when disabled and *exact* when enabled.
//!
//! - The no-op sink records zero events and leaves results byte-identical
//!   to a run without any telemetry plumbing.
//! - Two runs with the same seed produce byte-identical JSONL event logs.
//! - Replaying the per-hop events of an instrumented collective rebuilds
//!   its `Trace` exactly — same step structure, same total bytes, and a
//!   bit-for-bit identical α–β schedule time — for ring(8) and torus(2,4),
//!   on both the clean and the fault-injected paths.

use marsit::collectives::ring::{
    ring_allreduce_onebit, ring_allreduce_onebit_faulty, ring_allreduce_sum,
    ring_allreduce_sum_faulty,
};
use marsit::collectives::torus::{
    torus_allreduce_onebit, torus_allreduce_onebit_faulty, torus_allreduce_sum,
};
use marsit::collectives::{CombineCtx, Trace};
use marsit::prelude::*;
use marsit::telemetry::report::{analyze, parse_jsonl, schedule_time, validate};
use marsit::telemetry::{active, scoped, Telemetry, Value};
use proptest::prelude::*;

fn random_data(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = FastRng::new(seed, 0);
    (0..m)
        .map(|_| (0..d).map(|_| (rng.next_f64() as f32) - 0.5).collect())
        .collect()
}

fn random_signs(m: usize, d: usize, seed: u64) -> Vec<SignVec> {
    let mut rng = FastRng::new(seed, 1);
    (0..m)
        .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
        .collect()
}

/// A deterministic stand-in combine: keep the received aggregate.
fn keep_received(recv: &SignVec, local: &mut SignVec, _ctx: CombineCtx) {
    local.copy_from(recv);
}

/// Replays the recorded hop events and asserts they rebuild `trace` exactly:
/// step structure, total bytes, and bit-identical schedule time.
fn assert_reconstructs(tel: &Telemetry, trace: &Trace) {
    let analysis = analyze(&tel.snapshot_events()).expect("hop events analyze cleanly");
    assert_eq!(
        analysis.steps.as_slice(),
        trace.steps(),
        "rebuilt step structure differs from the collective's trace"
    );
    assert_eq!(analysis.total_bytes() as usize, trace.total_bytes());
    let link = LinkModel::new(25e-6, 1.25e9);
    let rebuilt = schedule_time(25e-6, 1.25e9, &analysis.steps);
    assert_eq!(
        rebuilt.to_bits(),
        trace.time(link).to_bits(),
        "rebuilt schedule time must match Trace::time bit-for-bit"
    );
}

#[test]
fn ring_sum_reconstructs_exactly() {
    let tel = Telemetry::recording();
    let mut data = random_data(8, 1000, 1);
    let trace = scoped(&tel, || ring_allreduce_sum(&mut data));
    assert_reconstructs(&tel, &trace);
}

#[test]
fn ring_onebit_reconstructs_exactly() {
    let tel = Telemetry::recording();
    let signs = random_signs(8, 1000, 2);
    let (_, trace) = scoped(&tel, || ring_allreduce_onebit(&signs, keep_received));
    assert_reconstructs(&tel, &trace);
}

#[test]
fn torus_sum_reconstructs_exactly() {
    let tel = Telemetry::recording();
    let mut data = random_data(8, 1000, 3);
    let trace = scoped(&tel, || torus_allreduce_sum(&mut data, 2, 4));
    assert_reconstructs(&tel, &trace);
}

#[test]
fn torus_onebit_reconstructs_exactly() {
    let tel = Telemetry::recording();
    let signs = random_signs(8, 1000, 4);
    let (_, trace) = scoped(&tel, || torus_allreduce_onebit(&signs, 2, 4, keep_received));
    assert_reconstructs(&tel, &trace);
}

#[test]
fn faulty_ring_sum_reconstructs_with_retries() {
    let plan = FaultPlan::seeded(9)
        .with_link_drop(0.2)
        .with_retry_policy(4, 1e-4);
    let tel = Telemetry::recording();
    let mut data = random_data(8, 1000, 5);
    let mut inj = plan.injector(0);
    let trace = scoped(&tel, || {
        ring_allreduce_sum_faulty(&mut data, &mut inj).expect("valid inputs")
    });
    assert!(
        trace.num_steps() > 2 * 7,
        "want retries in this scenario so the expanded-step path is exercised"
    );
    assert_reconstructs(&tel, &trace);
}

#[test]
fn faulty_ring_onebit_reconstructs_with_retries() {
    let plan = FaultPlan::seeded(11)
        .with_link_drop(0.2)
        .with_retry_policy(4, 1e-4);
    let tel = Telemetry::recording();
    let signs = random_signs(8, 1000, 6);
    let mut inj = plan.injector(0);
    let (_, trace) = scoped(&tel, || {
        ring_allreduce_onebit_faulty(&signs, &mut inj, keep_received).expect("valid inputs")
    });
    assert_reconstructs(&tel, &trace);
}

#[test]
fn faulty_torus_onebit_reconstructs_with_retries() {
    let plan = FaultPlan::seeded(13)
        .with_link_drop(0.2)
        .with_retry_policy(4, 1e-4);
    let tel = Telemetry::recording();
    let signs = random_signs(8, 1000, 7);
    let mut inj = plan.injector(0);
    let (_, trace) = scoped(&tel, || {
        torus_allreduce_onebit_faulty(&signs, 2, 4, &mut inj, keep_received).expect("valid inputs")
    });
    assert_reconstructs(&tel, &trace);
}

/// Consecutive collectives in one scope share the global `seq` counter, so
/// the concatenated rebuild equals the concatenated traces.
#[test]
fn consecutive_collectives_concatenate() {
    let tel = Telemetry::recording();
    let (mut combined, second) = scoped(&tel, || {
        let mut data = random_data(8, 500, 8);
        let first = ring_allreduce_sum(&mut data);
        let signs = random_signs(8, 500, 9);
        let (_, second) = torus_allreduce_onebit(&signs, 2, 4, keep_received);
        (first, second)
    });
    combined.extend(second);
    assert_reconstructs(&tel, &combined);
}

fn short_train_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::new(
        Workload::AlexNetMnist,
        Topology::ring(4),
        StrategyKind::Marsit { k: Some(5) },
    );
    cfg.rounds = 8;
    cfg.train_examples = 512;
    cfg.test_examples = 128;
    cfg.eval_every = 0;
    cfg.local_lr = 0.1;
    cfg.marsit_global_lr = 0.01;
    cfg.optimizer = OptimizerKind::Sgd;
    cfg
}

/// The no-op sink records nothing, and threading it through a training run
/// changes no result bit.
#[test]
fn disabled_sink_is_invisible() {
    let baseline = train(&short_train_cfg());
    let disabled = Telemetry::disabled();
    let mut cfg = short_train_cfg();
    cfg.telemetry = disabled.clone();
    let with_disabled = train(&cfg);
    assert_eq!(
        disabled.event_count(),
        0,
        "no-op sink must emit zero events"
    );
    assert_eq!(disabled.events_jsonl(), "");
    assert_eq!(baseline, with_disabled);
}

/// Recording telemetry observes a run without perturbing it, and the full
/// event log is byte-stable across same-seed runs — including under fault
/// injection.
#[test]
fn same_seed_runs_are_byte_identical() {
    let run = || {
        let tel = Telemetry::recording();
        let mut cfg = short_train_cfg();
        cfg.fault_plan = FaultPlan::seeded(7)
            .with_link_drop(0.05)
            .with_straggler(1, 2.0);
        cfg.telemetry = tel.clone();
        let report = train(&cfg);
        (report, tel.events_jsonl(), tel.summary_json())
    };
    let (report_a, jsonl_a, summary_a) = run();
    let (report_b, jsonl_b, summary_b) = run();
    assert_eq!(report_a, report_b);
    assert!(!jsonl_a.is_empty());
    assert_eq!(jsonl_a, jsonl_b, "event logs must be byte-identical");
    assert_eq!(summary_a, summary_b, "summaries must be byte-identical");

    // The recorded run is also unperturbed relative to a silent one.
    let mut silent_cfg = short_train_cfg();
    silent_cfg.fault_plan = FaultPlan::seeded(7)
        .with_link_drop(0.05)
        .with_straggler(1, 2.0);
    let silent = train(&silent_cfg);
    assert_eq!(silent, report_a);
}

/// A full training run's log round-trips through JSONL, passes schema
/// validation, and its hop events account for every byte the report counted.
#[test]
fn train_log_roundtrips_validates_and_accounts_bytes() {
    let tel = Telemetry::recording();
    let mut cfg = short_train_cfg();
    cfg.telemetry = tel.clone();
    let report = train(&cfg);

    let jsonl = tel.events_jsonl();
    let events = parse_jsonl(&jsonl).expect("log parses");
    assert_eq!(events.len(), tel.event_count());
    assert_eq!(validate(&events), Vec::<String>::new());

    let analysis = analyze(&events).expect("log analyzes");
    assert_eq!(analysis.total_bytes() as usize, report.total_bytes);
    assert_eq!(analysis.phases.rounds as usize, cfg.rounds);
    assert!((analysis.phases.total_s() - report.total_time.total()).abs() < 1e-9);
}

proptest! {
    /// Arbitrary interleavings of nested telemetry scopes never reorder
    /// events: each sink receives exactly the events emitted while it was
    /// the innermost scope, in global emission order, and its batched JSONL
    /// rendering preserves that order byte-for-byte.
    #[test]
    fn interleaved_scopes_never_reorder_events(
        ops in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        let outer = Telemetry::recording();
        let inner = Telemetry::recording();
        let mut expect_outer = Vec::new();
        let mut expect_inner = Vec::new();
        let mut next = 0u64;
        scoped(&outer, || {
            for &op in &ops {
                let emit_here = |expect: &mut Vec<u64>, next: &mut u64| {
                    let t = active().expect("a scope is installed");
                    t.emit("e", vec![("i", Value::U64(*next))]);
                    expect.push(*next);
                    *next += 1;
                };
                match op % 4 {
                    // A nested scope swallows a burst of events, then pops.
                    0 => scoped(&inner, || {
                        for _ in 0..=(op / 64) {
                            emit_here(&mut expect_inner, &mut next);
                        }
                    }),
                    // Re-entering the *same* sink nests fine too.
                    1 => scoped(&outer, || emit_here(&mut expect_outer, &mut next)),
                    _ => emit_here(&mut expect_outer, &mut next),
                }
            }
        });
        let ids = |t: &Telemetry| -> Vec<u64> {
            t.snapshot_events()
                .iter()
                .map(|e| e.u64_field("i").expect("payload field"))
                .collect()
        };
        prop_assert_eq!(ids(&outer), expect_outer);
        prop_assert_eq!(ids(&inner), expect_inner);
        // The batch renders in the same order it recorded.
        for t in [&outer, &inner] {
            let mut per_event = String::new();
            t.for_each_event(|ev| {
                ev.write_jsonl(&mut per_event);
                per_event.push('\n');
            });
            prop_assert_eq!(t.events_jsonl(), per_event);
        }
    }
}
