//! Regression tests for the reusable round workspace.
//!
//! `Marsit` keeps a private `RoundWorkspace` (compensated updates,
//! full-precision buffers, packed sign vectors) alive across rounds so the
//! steady-state synchronize path re-fills buffers instead of reallocating
//! them. That reuse must be invisible: a long-lived instance whose buffers
//! are warm with round `t−1` data must produce byte-identical
//! [`SyncOutcome`]s and telemetry streams to a fresh instance whose cold
//! workspace replays the same prefix of rounds. Shape changes are the
//! dangerous case, so the suite alternates topologies mid-run and crashes a
//! worker (which shrinks the workspace to the survivor count and regrows it
//! on the next clean round).

use marsit::core::SyncOutcome;
use marsit::prelude::*;
use marsit::telemetry::{scoped, Telemetry};

const ROUNDS: usize = 10;

/// Per-round, per-worker updates: distinct every round so stale buffer
/// contents from round `t−1` can never masquerade as round `t` inputs.
fn round_updates(m: usize, d: usize, seed: u64, t: u64) -> Vec<Vec<f32>> {
    (0..m)
        .map(|w| {
            let mut rng = FastRng::new(seed.wrapping_add(t), w as u64);
            (0..d).map(|_| (rng.next_f64() as f32) - 0.5).collect()
        })
        .collect()
}

fn cfg(seed: u64) -> MarsitConfig {
    MarsitConfig::new(SyncSchedule::every(3), 0.01, seed)
}

fn faulty_cfg(seed: u64) -> MarsitConfig {
    let plan = FaultPlan::seeded(0xBADC)
        .with_link_drop(0.05)
        .with_straggler(1, 2.0)
        .with_crash(2, 4);
    cfg(seed).with_fault_plan(plan)
}

/// Runs `rounds` on a single long-lived instance; for every `t`, a fresh
/// instance replays rounds `0..=t` and its round-`t` outcome must be
/// byte-identical to the long-lived one's. Telemetry is byte-compared too:
/// the replay's full JSONL must be a prefix of the long-lived run's log.
fn assert_reuse_invisible(
    cfg: MarsitConfig,
    m: usize,
    d: usize,
    seed: u64,
    topology_for: impl Fn(u64) -> Topology,
) {
    let long_tel = Telemetry::recording();
    let mut long_lived = Marsit::new(cfg.clone(), m, d);
    let long_outcomes: Vec<SyncOutcome> = scoped(&long_tel, || {
        (0..ROUNDS as u64)
            .map(|t| long_lived.synchronize(&round_updates(m, d, seed, t), topology_for(t)))
            .collect()
    });
    let long_jsonl = long_tel.events_jsonl();
    assert!(!long_jsonl.is_empty(), "the run must actually log events");

    for t in 0..ROUNDS as u64 {
        let fresh_tel = Telemetry::recording();
        let mut fresh = Marsit::new(cfg.clone(), m, d);
        let outcome = scoped(&fresh_tel, || {
            (0..=t)
                .map(|r| fresh.synchronize(&round_updates(m, d, seed, r), topology_for(r)))
                .last()
                .expect("at least one round")
        });
        assert_eq!(
            outcome, long_outcomes[t as usize],
            "round {t}: cold-workspace replay disagrees with warm long-lived instance"
        );
        let fresh_jsonl = fresh_tel.events_jsonl();
        assert!(
            long_jsonl.starts_with(&fresh_jsonl),
            "round {t}: replay telemetry is not a byte-prefix of the long-lived log"
        );
    }
}

#[test]
fn ring_clean_rounds_reuse_is_invisible() {
    assert_reuse_invisible(cfg(42), 8, 300, 5, |_| Topology::ring(8));
}

#[test]
fn torus_clean_rounds_reuse_is_invisible() {
    assert_reuse_invisible(cfg(42), 8, 257, 5, |_| Topology::torus(2, 4));
}

/// A crash at round 4 shrinks the one-bit and full-precision buffers to the
/// seven survivors; later rounds regrow them. The warm instance must agree
/// with cold replays through the shrink *and* the regrow.
#[test]
fn ring_faulty_rounds_reuse_is_invisible() {
    assert_reuse_invisible(faulty_cfg(7), 8, 129, 8, |_| Topology::ring(8));
}

#[test]
fn torus_faulty_rounds_reuse_is_invisible() {
    assert_reuse_invisible(faulty_cfg(7), 8, 129, 8, |_| Topology::torus(2, 4));
}

/// Alternating ring/torus on one instance reshapes the workspace every
/// round — the harshest shape churn the driver can produce.
#[test]
fn mixed_topology_reuse_is_invisible() {
    assert_reuse_invisible(cfg(42), 8, 300, 5, |t| {
        if t % 2 == 0 {
            Topology::ring(8)
        } else {
            Topology::torus(2, 4)
        }
    });
}
