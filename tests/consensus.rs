//! Cross-crate integration tests for the MAR consensus invariant:
//! after every synchronization, all workers must hold the same model.

use marsit::prelude::*;

fn base_cfg(strategy: StrategyKind, topology: Topology) -> TrainConfig {
    let mut cfg = TrainConfig::new(Workload::AlexNetMnist, topology, strategy);
    cfg.rounds = 24;
    cfg.train_examples = 1024;
    cfg.test_examples = 256;
    cfg.batch_per_worker = 16;
    cfg.eval_every = 0;
    cfg.check_consistency = true; // panics inside train() on divergence
    cfg
}

#[test]
fn all_strategies_reach_consensus_on_ring() {
    for strategy in [
        StrategyKind::Psgd,
        StrategyKind::SignMajority,
        StrategyKind::EfSign,
        StrategyKind::Ssdm,
        StrategyKind::Cascading,
        StrategyKind::Marsit { k: Some(8) },
        StrategyKind::Marsit { k: None },
        StrategyKind::PowerSgd { rank: 2 },
    ] {
        let report = train(&base_cfg(strategy, Topology::ring(4)));
        assert_eq!(report.records.len(), 24, "{strategy}");
    }
}

#[test]
fn all_strategies_reach_consensus_on_torus() {
    for strategy in [
        StrategyKind::Psgd,
        StrategyKind::SignMajority,
        StrategyKind::EfSign,
        StrategyKind::Ssdm,
        StrategyKind::Marsit { k: Some(8) },
    ] {
        let report = train(&base_cfg(strategy, Topology::torus(2, 3)));
        assert_eq!(report.records.len(), 24, "{strategy}");
    }
}

#[test]
fn runs_are_bit_reproducible() {
    for strategy in [StrategyKind::Marsit { k: Some(8) }, StrategyKind::Ssdm] {
        let cfg = base_cfg(strategy, Topology::ring(4));
        let a = train(&cfg);
        let b = train(&cfg);
        assert_eq!(a.final_eval, b.final_eval, "{strategy}");
        assert_eq!(a.total_bytes, b.total_bytes, "{strategy}");
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra, rb, "{strategy}");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let mut cfg = base_cfg(StrategyKind::Marsit { k: None }, Topology::ring(4));
    let a = train(&cfg);
    cfg.seed = 43;
    let b = train(&cfg);
    assert_ne!(a.final_eval, b.final_eval);
}

#[test]
fn marsit_core_consensus_is_identical_across_workers() {
    // Direct API check: the synchronizer returns ONE update; feeding
    // different per-worker updates still yields a single consensus vector
    // whose application keeps replicas equal (checked inside train()), and
    // repeated synchronization with the same instance advances rounds.
    use marsit::core::{Marsit, MarsitConfig, SyncSchedule};
    let cfg = MarsitConfig::new(SyncSchedule::every(3), 0.01, 5);
    let mut sync = Marsit::new(cfg, 4, 64);
    let mut rng = FastRng::new(1, 0);
    for t in 0..9u64 {
        let updates: Vec<Vec<f32>> = (0..4)
            .map(|_| (0..64).map(|_| rng.next_f64() as f32 - 0.5).collect())
            .collect();
        let out = sync.synchronize(&updates, Topology::ring(4));
        assert_eq!(out.round, t);
        assert_eq!(out.full_precision, t % 3 == 0);
    }
}
