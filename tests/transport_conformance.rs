//! Cross-backend transport conformance suite.
//!
//! The pinned contract: a [`Scenario`] run on the deterministic simulator,
//! the threaded in-process backend, and the multi-process TCP backend must
//! produce **byte-identical** consensus words, identical `⊙`/RNG-draw
//! counts, identical wire traces, and identical per-hop telemetry (up to
//! the `backend`/`clock` tag naming the transport that produced it).
//!
//! The matrix covers all four multi-hop paradigms the paper names — ring,
//! 2D torus, binary tree, segmented ring — each clean and under seeded
//! link-drop faults.

use marsit::core::transport::{RunArtifacts, Scenario, TopoKind};
use marsit::core::CombineKind;
use marsit::telemetry::{scoped, Telemetry};

fn worker_exe() -> &'static str {
    env!("CARGO_BIN_EXE_transport_worker")
}

fn matrix() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (topo, world) in [
        (TopoKind::Ring, 8),
        (TopoKind::Torus { rows: 2, cols: 4 }, 8),
        (TopoKind::Tree, 6),
        (TopoKind::SegRing { macro_segments: 3 }, 4),
    ] {
        for drop_p in [None, Some(0.3)] {
            scenarios.push(Scenario {
                topo,
                world,
                d: 321,
                seed: 0xD15C0,
                round: 5,
                drop_p,
                combine: CombineKind::Weighted,
            });
        }
    }
    scenarios
}

/// Runs `f` under a fresh recording telemetry scope; returns its value plus
/// the scope's JSONL event log.
fn with_telemetry<R>(f: impl FnOnce() -> R) -> (R, String) {
    let tel = Telemetry::recording();
    let out = scoped(&tel, f);
    (out, tel.events_jsonl())
}

/// Strips the transport tag from a telemetry JSONL line so logs from
/// different backends become comparable. Tag values are pinned separately.
fn normalize(jsonl: &str) -> String {
    jsonl
        .lines()
        .map(|line| {
            let mut line = line.to_string();
            for backend in ["simulator", "threaded", "process"] {
                for clock in ["simulated", "real"] {
                    line = line.replace(
                        &format!(",\"backend\":\"{backend}\",\"clock\":\"{clock}\""),
                        "",
                    );
                }
            }
            line
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_artifacts_match(label: &str, reference: &RunArtifacts, got: &RunArtifacts) {
    assert_eq!(
        reference.consensus_words(),
        got.consensus_words(),
        "{label}: consensus words diverged"
    );
    assert_eq!(reference.combines, got.combines, "{label}: combine count");
    assert_eq!(reference.rng_draws, got.rng_draws, "{label}: rng draws");
    assert_eq!(
        reference.trace.total_bytes(),
        got.trace.total_bytes(),
        "{label}: trace bytes"
    );
    assert_eq!(
        reference.trace.num_steps(),
        got.trace.num_steps(),
        "{label}: trace steps"
    );
    let link = marsit::simnet::RateProfile::public_cloud().link;
    assert!(
        (reference.trace.time(link) - got.trace.time(link)).abs() < 1e-12,
        "{label}: trace time"
    );
}

#[test]
fn threaded_backend_conforms_across_matrix() {
    for sc in matrix() {
        let label = format!("{:?} drop={:?} threaded", sc.topo, sc.drop_p);
        let (reference, ref_log) = with_telemetry(|| sc.run_simulator().unwrap());
        let (threaded, thr_log) = with_telemetry(|| sc.run_threaded().unwrap());
        assert_artifacts_match(&label, &reference, &threaded);
        assert_eq!(
            normalize(&ref_log),
            normalize(&thr_log),
            "{label}: telemetry diverged"
        );
        // The tag itself must name the backend that produced the log
        // (trees emit no hop events, so there is nothing to tag there).
        if ref_log.contains("\"ev\":\"hop\"") {
            assert!(ref_log.contains("\"backend\":\"simulator\""), "{label}");
            assert!(thr_log.contains("\"backend\":\"threaded\""), "{label}");
        }
    }
}

#[test]
fn process_backend_conforms_across_matrix() {
    for sc in matrix() {
        let label = format!("{:?} drop={:?} process", sc.topo, sc.drop_p);
        let (reference, ref_log) = with_telemetry(|| sc.run_simulator().unwrap());
        let (process, proc_log) = with_telemetry(|| sc.run_process(worker_exe()).unwrap());
        assert_artifacts_match(&label, &reference, &process);
        assert_eq!(
            normalize(&ref_log),
            normalize(&proc_log),
            "{label}: telemetry diverged"
        );
        if proc_log.contains("\"ev\":\"hop\"") {
            assert!(proc_log.contains("\"backend\":\"process\""), "{label}");
        }
    }
}

#[test]
fn unweighted_ablation_conforms_too() {
    let sc = Scenario {
        topo: TopoKind::Ring,
        world: 8,
        d: 200,
        seed: 7,
        round: 0,
        drop_p: Some(0.2),
        combine: CombineKind::UnweightedAblation,
    };
    let reference = sc.run_simulator().unwrap();
    let threaded = sc.run_threaded().unwrap();
    assert_artifacts_match("unweighted", &reference, &threaded);
}

#[test]
fn process_backend_repeats_are_deterministic() {
    let sc = Scenario {
        topo: TopoKind::Ring,
        world: 4,
        d: 130,
        seed: 99,
        round: 2,
        drop_p: Some(0.25),
        combine: CombineKind::Weighted,
    };
    let a = sc.run_process(worker_exe()).unwrap();
    let b = sc.run_process(worker_exe()).unwrap();
    assert_eq!(a.consensus_words(), b.consensus_words());
    assert_eq!(a.combines, b.combines);
    assert_eq!(a.rng_draws, b.rng_draws);
}
