//! Property and golden-fixture tests for the `marsit-wire/1` codec.
//!
//! The framing discipline follows `marsit-checkpoint/1`: every numeric field
//! is a hex **bit pattern**, so encode→decode is exact for every `u64` word
//! and every `f32` — including `−0.0`, NaNs, and subnormals — and `decode`
//! returns typed [`WireError`]s for truncated, corrupt, or wrong-version
//! input instead of panicking.

use marsit::simnet::{Frame, FrameKind, Payload, WireError, DRIVER};
use proptest::prelude::*;

/// All frame kinds, for exhaustive sweeps.
const KINDS: [FrameKind; 7] = [
    FrameKind::Hello,
    FrameKind::Data,
    FrameKind::Round,
    FrameKind::Result,
    FrameKind::Failed,
    FrameKind::Down,
    FrameKind::Stop,
];

#[test]
fn golden_fixture_lines_are_pinned() {
    // The wire format is a protocol: these exact byte strings must keep
    // decoding forever, and the frames must keep encoding to them.
    let cases: &[(&str, Frame)] = &[
        (
            "marsit-wire/1 data 3 1 wdeadbeef000000010000000000000007\n",
            Frame::words(
                FrameKind::Data,
                3,
                1,
                vec![0xdead_beef_0000_0001, 0x0000_0000_0000_0007],
            ),
        ),
        (
            "marsit-wire/1 stop 4294967295 2 -\n",
            Frame::control(FrameKind::Stop, DRIVER, 2),
        ),
        (
            "marsit-wire/1 hello 5 4294967295 -\n",
            Frame::control(FrameKind::Hello, 5, DRIVER),
        ),
    ];
    for (line, frame) in cases {
        assert_eq!(&frame.encode(), line);
        assert_eq!(&Frame::decode(line).unwrap(), frame);
    }
}

#[test]
fn float_special_values_round_trip_bit_exact() {
    let specials: [f32; 8] = [
        0.0,
        -0.0,
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::MIN_POSITIVE / 2.0,     // subnormal
        f32::from_bits(0x0000_0001), // smallest subnormal
        f32::from_bits(0xffc0_0001), // negative quiet NaN with payload
    ];
    let frame = Frame {
        kind: FrameKind::Result,
        from: 0,
        to: DRIVER,
        payload: Payload::Floats(specials.to_vec()),
        ctx: None,
    };
    let decoded = Frame::decode(&frame.encode()).unwrap();
    let Payload::Floats(got) = decoded.payload else {
        panic!("payload kind changed in flight");
    };
    for (a, b) in specials.iter().zip(&got) {
        assert_eq!(a.to_bits(), b.to_bits(), "bit pattern not preserved");
    }
}

#[test]
fn typed_errors_for_malformed_frames() {
    type ErrCheck = fn(&WireError) -> bool;
    let cases: &[(&str, ErrCheck)] = &[
        ("", |e| matches!(e, WireError::BadMagic { .. })),
        ("marsit-wire/1 data 3", |e| {
            matches!(e, WireError::Truncated)
        }),
        ("not-marsit hello 0 1 -", |e| {
            matches!(e, WireError::BadMagic { .. })
        }),
        ("marsit-wire/9 data 0 1 -", |e| {
            matches!(e, WireError::UnsupportedVersion { .. })
        }),
        ("marsit-wire/1 teleport 0 1 -", |e| {
            matches!(e, WireError::UnknownKind { .. })
        }),
        ("marsit-wire/1 data zero 1 -", |e| {
            matches!(e, WireError::BadRank { .. })
        }),
        ("marsit-wire/1 data 0 1 wdeadbee", |e| {
            matches!(e, WireError::BadPayload { .. })
        }),
        ("marsit-wire/1 data 0 1 qdeadbeef00000001", |e| {
            matches!(e, WireError::BadPayload { .. })
        }),
    ];
    for (line, matches_expected) in cases {
        let err = Frame::decode(line).expect_err(line);
        assert!(matches_expected(&err), "{line}: got {err:?}");
    }
}

proptest! {
    /// Any words frame round-trips exactly: kind, endpoints, and every
    /// 64-bit pattern in the payload.
    #[test]
    fn words_frames_round_trip(
        kind_ix in 0usize..7,
        from in any::<u32>(),
        to in any::<u32>(),
        words in proptest::collection::vec(any::<u64>(), 0..17),
    ) {
        let frame = Frame::words(KINDS[kind_ix], from, to, words);
        let line = frame.encode();
        prop_assert!(line.ends_with('\n'));
        prop_assert_eq!(Frame::decode(&line).unwrap(), frame);
    }

    /// Any float payload round-trips bit-exactly, whatever the bit pattern
    /// (we synthesize floats from raw bits, hitting NaNs and subnormals).
    #[test]
    fn float_frames_round_trip_all_bit_patterns(
        bits in proptest::collection::vec(any::<u32>(), 1..9),
    ) {
        let floats: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let frame = Frame {
            kind: FrameKind::Result,
            from: 1,
            to: DRIVER,
            payload: Payload::Floats(floats),
            ctx: None,
        };
        let decoded = Frame::decode(&frame.encode()).unwrap();
        let Payload::Floats(got) = decoded.payload else {
            panic!("payload kind changed in flight");
        };
        for (b, f) in bits.iter().zip(&got) {
            prop_assert_eq!(*b, f.to_bits());
        }
    }

    /// Truncating a valid frame anywhere yields a typed error or — when the
    /// cut removes trailing payload words cleanly — a shorter valid frame.
    /// It never panics.
    #[test]
    fn truncation_never_panics(
        words in proptest::collection::vec(any::<u64>(), 1..9),
        cut_seed in any::<u64>(),
    ) {
        let line = Frame::words(FrameKind::Data, 2, 5, words).encode();
        let cut = (cut_seed % line.len() as u64) as usize;
        // Cut on a char boundary (the frame is ASCII, so every byte is one).
        let _ = Frame::decode(&line[..cut]);
    }

    /// Arbitrary garbage bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Frame::decode(&text);
    }
}
