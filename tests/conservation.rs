//! Wire-traffic conservation laws: every one-bit collective's `Trace` must
//! account for exactly the elements its schedule moves — no phantom bytes,
//! no missing transfers — across all four paradigms (ring, torus, tree,
//! segmented ring).
//!
//! One-bit payloads are packed, so a transfer of a `k`-element range costs
//! `max(1, ⌈k/8⌉)` bytes — between `k` and `k + 7` bits for `k ≥ 1`, and
//! one padding byte for an empty range (degenerate segmentations with
//! `D < M` produce them). Summing over a schedule that moves `E` elements
//! across `T` transfers therefore bounds the trace total:
//!
//! ```text
//! max(E, 8·T) ≤ 8 · total_bytes ≤ E + 8·T
//! ```
//!
//! The per-paradigm element counts `E` are closed forms of the schedule:
//! `2(M−1)·D` for ring / tree / segmented ring, and
//! `2(C−1)·R·D + 2(R−1)·D` for an `R×C` torus (the same formula
//! `trainsim::elements_per_round` prices wire width with).

use marsit::collectives::ring::ring_allreduce_onebit;
use marsit::collectives::segring::segring_allreduce_onebit;
use marsit::collectives::torus::torus_allreduce_onebit;
use marsit::collectives::tree::tree_allreduce_onebit;
use marsit::collectives::{CombineCtx, Trace};
use marsit::prelude::*;
use proptest::prelude::*;

fn random_signs(m: usize, d: usize, seed: u64) -> Vec<SignVec> {
    let mut rng = FastRng::new(seed, 0);
    (0..m)
        .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut rng))
        .collect()
}

/// Elements moved and transfer count implied by a trace of one-bit packed
/// ranges: every step lists its per-transfer byte counts.
fn transfer_count(trace: &Trace) -> usize {
    trace.steps().iter().map(Vec::len).sum()
}

fn assert_bit_conservation(trace: &Trace, elements_moved: usize, label: &str) {
    let bits = 8 * trace.total_bytes();
    let transfers = transfer_count(trace);
    assert!(
        bits >= elements_moved.max(8 * transfers),
        "{label}: {bits} wire bits cannot carry {elements_moved} elements \
         over {transfers} transfers"
    );
    assert!(
        bits <= elements_moved + 8 * transfers,
        "{label}: {bits} wire bits exceed packing bound for \
         {elements_moved} elements over {transfers} transfers"
    );
    assert!(
        trace.critical_path_bytes() <= trace.total_bytes(),
        "{label}: critical path exceeds total traffic"
    );
}

#[test]
fn ring_onebit_wire_bytes_match_closed_form() {
    // d divisible by 8·m: every segment packs exactly, so the bound is an
    // equality: total = 2(M−1) · D/8 bytes.
    for (m, d) in [(4usize, 64usize), (5, 240), (8, 1024)] {
        let signs = random_signs(m, d, 7);
        let (_, trace) = ring_allreduce_onebit(&signs, |r, l, _ctx: CombineCtx| l.and_assign(r));
        assert_eq!(trace.num_steps(), 2 * (m - 1), "ring({m}) steps");
        assert_eq!(
            trace.total_bytes(),
            2 * (m - 1) * d / 8,
            "ring({m}, d={d}) exact packed total"
        );
        assert_bit_conservation(&trace, 2 * (m - 1) * d, &format!("ring({m}, d={d})"));
    }
}

#[test]
fn torus_onebit_wire_bytes_within_bounds() {
    for (rows, cols, d) in [(2usize, 3usize, 48usize), (2, 4, 64), (3, 3, 90)] {
        let signs = random_signs(rows * cols, d, 11);
        let (_, trace) =
            torus_allreduce_onebit(&signs, rows, cols, |r, l, _ctx: CombineCtx| l.or_assign(r));
        let elements = 2 * (cols - 1) * rows * d + 2 * (rows - 1) * d;
        assert_bit_conservation(&trace, elements, &format!("torus({rows}x{cols}, d={d})"));
    }
}

#[test]
fn tree_onebit_wire_bytes_match_closed_form() {
    // Every non-root sends its full payload up exactly once and receives
    // the result exactly once: 2(M−1) transfers of ⌈D/8⌉ bytes.
    for (m, d) in [(2usize, 32usize), (5, 80), (8, 128)] {
        let signs = random_signs(m, d, 13);
        let mut combine = |r: &SignVec, l: &mut SignVec, _ctx: CombineCtx| l.and_assign(r);
        let (_, trace) = tree_allreduce_onebit(&signs, &mut combine);
        assert_eq!(transfer_count(&trace), 2 * (m - 1), "tree({m}) transfers");
        assert_eq!(
            trace.total_bytes(),
            2 * (m - 1) * d.div_ceil(8),
            "tree({m}, d={d}) exact total"
        );
        assert_bit_conservation(&trace, 2 * (m - 1) * d, &format!("tree({m}, d={d})"));
    }
}

#[test]
fn segring_onebit_wire_bytes_within_bounds() {
    // S parallel macro-segment rings each move 2(M−1)·(segment length)
    // elements; the union moves 2(M−1)·D.
    for (m, s, d) in [(4usize, 2usize, 64usize), (6, 3, 90), (5, 4, 77)] {
        let signs = random_signs(m, d, 17);
        let mut combine = |r: &SignVec, l: &mut SignVec, _ctx: CombineCtx| {
            l.xor_assign(r);
            l.not_assign();
        };
        let (_, trace) = segring_allreduce_onebit(&signs, s, &mut combine);
        assert_bit_conservation(
            &trace,
            2 * (m - 1) * d,
            &format!("segring({m}, S={s}, d={d})"),
        );
    }
}

proptest! {
    /// The packing bound and the critical-path inequality hold for *every*
    /// paradigm at arbitrary worker counts and payload sizes, including
    /// sizes that do not divide evenly.
    #[test]
    fn conservation_holds_for_arbitrary_shapes(
        m in 2usize..10,
        d in 1usize..400,
        seed in any::<u64>(),
    ) {
        let signs = random_signs(m, d, seed);

        let (_, ring) = ring_allreduce_onebit(&signs, |r, l, _ctx: CombineCtx| l.and_assign(r));
        assert_bit_conservation(&ring, 2 * (m - 1) * d, "ring");

        let mut combine = |r: &SignVec, l: &mut SignVec, _ctx: CombineCtx| l.or_assign(r);
        let (_, tree) = tree_allreduce_onebit(&signs, &mut combine);
        assert_bit_conservation(&tree, 2 * (m - 1) * d, "tree");

        let macro_segments = 1 + m % 3;
        let mut combine = |r: &SignVec, l: &mut SignVec, _ctx: CombineCtx| l.and_assign(r);
        let (_, seg) = segring_allreduce_onebit(&signs, macro_segments, &mut combine);
        assert_bit_conservation(&seg, 2 * (m - 1) * d, "segring");
    }

    /// Torus shapes, separately (they need a factored worker count).
    #[test]
    fn torus_conservation_holds_for_arbitrary_shapes(
        rows in 2usize..5,
        cols in 2usize..5,
        d in 1usize..300,
        seed in any::<u64>(),
    ) {
        let signs = random_signs(rows * cols, d, seed);
        let (_, trace) =
            torus_allreduce_onebit(&signs, rows, cols, |r, l, _ctx: CombineCtx| l.or_assign(r));
        let elements = 2 * (cols - 1) * rows * d + 2 * (rows - 1) * d;
        assert_bit_conservation(&trace, elements, "torus");
    }
}
