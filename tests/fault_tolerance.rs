//! Acceptance tests for the fault-injection & graceful-degradation layer:
//! a seeded fault plan (1% link drops, one 4× straggler, one mid-run
//! crash) must leave Marsit training convergent and consensus-consistent
//! on both ring and torus topologies, the fault counters must surface in
//! the report, `FaultPlan::none()` must be byte-identical to a run without
//! the fault layer, and everything must replay exactly under a fixed seed.

use marsit::collectives::ring::ring_allreduce_onebit_faulty;
use marsit::core::ominus::combine_weighted_assign;
use marsit::prelude::*;
use marsit::tensor::stats::binomial_ci_halfwidth;

fn faulty_cfg(topology: Topology) -> TrainConfig {
    let mut cfg = TrainConfig::new(
        Workload::AlexNetMnist,
        topology,
        StrategyKind::Marsit { k: Some(10) },
    );
    cfg.rounds = 30;
    cfg.train_examples = 2048;
    cfg.test_examples = 512;
    cfg.eval_every = 0;
    cfg.local_lr = 0.1;
    cfg.marsit_global_lr = 0.01;
    cfg.optimizer = OptimizerKind::Sgd;
    // check_consistency stays on (the default): train() itself asserts
    // that every replica — including the crashed one, which keeps applying
    // the survivors' consensus update — stays bitwise identical.
    cfg.fault_plan = FaultPlan::seeded(0xFA17)
        .with_link_drop(0.01)
        .with_straggler(1, 4.0)
        .with_crash(3, 15);
    cfg
}

/// The issue's headline scenario on an 8-worker ring: drops are retried,
/// the straggler stretches compute, the crash repairs to a 7-worker ring,
/// and training still converges with all counters visible in the report.
#[test]
fn ring8_survives_drops_straggler_and_crash() {
    let report = train(&faulty_cfg(Topology::ring(8)));
    assert!(!report.diverged);
    assert!(
        report.final_eval.accuracy > 0.6,
        "accuracy {}",
        report.final_eval.accuracy
    );
    assert!(report.faults.retransmits > 0, "{:?}", report.faults);
    assert_eq!(report.faults.repairs, 1, "{:?}", report.faults);
    assert_eq!(report.faults.crashed_workers, 1);
    assert!(report.faults.retry_extra_s > 0.0);

    // Faults are strictly additive on the simulated clock.
    let mut clean = faulty_cfg(Topology::ring(8));
    clean.fault_plan = FaultPlan::none();
    let clean_report = train(&clean);
    assert!(clean_report.faults.is_clean());
    assert!(report.total_time.total() > clean_report.total_time.total());
}

/// The same plan on a 2×4 torus: the crash degrades the torus schedule to
/// a ring over the 7 survivors and the run still reaches consensus.
#[test]
fn torus2x4_survives_drops_straggler_and_crash() {
    let report = train(&faulty_cfg(Topology::torus(2, 4)));
    assert!(!report.diverged);
    assert!(
        report.final_eval.accuracy > 0.6,
        "accuracy {}",
        report.final_eval.accuracy
    );
    assert!(report.faults.retransmits > 0, "{:?}", report.faults);
    assert_eq!(report.faults.repairs, 1);
    assert_eq!(report.faults.crashed_workers, 1);
}

/// `FaultPlan::none()` is free: the report is byte-identical to one from a
/// config that never mentions the fault layer.
#[test]
fn none_plan_report_is_byte_identical() {
    let mut cfg = faulty_cfg(Topology::ring(4));
    cfg.fault_plan = FaultPlan::none();
    let explicit = train(&cfg);
    let default_cfg = {
        let mut c = faulty_cfg(Topology::ring(4));
        c.fault_plan = FaultPlan::default();
        c
    };
    let default_report = train(&default_cfg);
    assert_eq!(explicit, default_report);
    assert!(explicit.faults.is_clean());
}

/// Two runs under the same fault-plan seed replay every drop, retry, and
/// repair exactly.
#[test]
fn faulty_runs_replay_deterministically() {
    let cfg = faulty_cfg(Topology::ring(8));
    let a = train(&cfg);
    let b = train(&cfg);
    assert_eq!(a, b);
}

/// Unbiasedness survives the fault layer: with a retry budget deep enough
/// that no transfer is permanently omitted, `E[consensus bit]` through the
/// *faulty* ring pipeline over the 7 crash survivors still equals the
/// survivors' mean sign, within a 5σ binomial interval.
#[test]
fn survivor_unbiasedness_under_retried_drops() {
    let survivors = 7;
    let d = 16;
    let mut seed_rng = FastRng::new(21, 0);
    let signs: Vec<SignVec> = (0..survivors)
        .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut seed_rng))
        .collect();
    // Drop 10% of transfers but allow 8 retries: the chance of exhausting
    // the budget (an omission, which *would* bias the estimate toward the
    // workers that got through) is 1e-9 per transfer — negligible over
    // this experiment.
    let plan = FaultPlan::seeded(33)
        .with_link_drop(0.1)
        .with_retry_policy(8, 1e-4);
    let trials: u64 = 6_000;
    let mut ones = vec![0u32; d];
    let mut retransmits = 0u64;
    for trial in 0..trials {
        let mut inj = plan.injector(trial);
        let mut rng = FastRng::new(90_000 + trial, 0);
        let (out, _) = ring_allreduce_onebit_faulty(&signs, &mut inj, |r, l, ctx| {
            combine_weighted_assign(r, ctx.received_count, l, ctx.local_count, &mut rng);
        })
        .expect("valid inputs");
        retransmits += inj.stats().retransmits;
        for (j, o) in ones.iter_mut().enumerate() {
            *o += u32::from(out.get(j));
        }
    }
    assert!(
        retransmits > 0,
        "the drop rate must actually exercise retries"
    );
    for (j, &o) in ones.iter().enumerate() {
        let measured = f64::from(o) / trials as f64;
        let expected = signs.iter().filter(|v| v.get(j)).count() as f64 / survivors as f64;
        let hw = binomial_ci_halfwidth(expected, trials);
        assert!(
            (measured - expected).abs() <= hw + 1e-12,
            "coord {j}: {measured} vs {expected} (±{hw})"
        );
    }
}
