//! Integration tests for the extension surface: the paradigms the paper
//! names (tree / segmented-ring), the gossip baseline it rules out, the
//! related-work compressors, and the non-IID probe.

use marsit::collectives::gossip::{consensus_error, gossip_ring_step};
use marsit::collectives::segring::segring_allreduce_onebit;
use marsit::collectives::tree::tree_allreduce_onebit;
use marsit::compress::powersgd::PowerSgd;
use marsit::compress::quantizers::{qsgd, terngrad};
use marsit::compress::sparsify::{support_union_growth, TopK};
use marsit::core::ominus::combine_weighted_assign;
use marsit::prelude::*;
use marsit::tensor::stats::binomial_ci_halfwidth;
use marsit::trainsim::train_gossip;

/// Marsit's ⊙ composes over the tree and segmented-ring paradigms with the
/// same unbiasedness it has on the ring (the Section 5 extension claim).
#[test]
fn onebit_unbiased_over_tree_and_segring() {
    let m = 6;
    let d = 32;
    let mut seed_rng = FastRng::new(2, 0);
    let signs: Vec<SignVec> = (0..m)
        .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut seed_rng))
        .collect();
    let trials = 12_000u64;
    for paradigm in ["tree", "segring"] {
        let mut ones = vec![0u32; d];
        for trial in 0..trials {
            let mut rng = FastRng::new(10_000 + trial, 0);
            let mut combine =
                |r: &SignVec, l: &mut SignVec, ctx: marsit::collectives::CombineCtx| {
                    combine_weighted_assign(r, ctx.received_count, l, ctx.local_count, &mut rng);
                };
            let (out, trace) = if paradigm == "tree" {
                tree_allreduce_onebit(&signs, &mut combine)
            } else {
                segring_allreduce_onebit(&signs, 3, &mut combine)
            };
            assert!(trace.total_bytes() > 0);
            for (j, o) in ones.iter_mut().enumerate() {
                *o += u32::from(out.get(j));
            }
        }
        for (j, &o) in ones.iter().enumerate() {
            let measured = f64::from(o) / trials as f64;
            let expected = signs.iter().filter(|v| v.get(j)).count() as f64 / m as f64;
            // 5σ binomial interval: per-comparison false-positive ≈ 5.7e-7.
            let hw = binomial_ci_halfwidth(expected, trials);
            assert!(
                (measured - expected).abs() <= hw + 1e-12,
                "{paradigm} coord {j}: {measured} vs {expected} (±{hw})"
            );
        }
    }
}

/// Gossip mixes toward — but never reaches — consensus, and slows with M.
#[test]
fn gossip_consensus_gap_shrinks_geometrically() {
    let mut rng = FastRng::new(4, 0);
    let mut data: Vec<Vec<f32>> = (0..6)
        .map(|_| (0..16).map(|_| rng.next_f64() as f32).collect())
        .collect();
    let e0 = consensus_error(&data).unwrap();
    for _ in 0..5 {
        gossip_ring_step(&mut data).unwrap();
    }
    let e5 = consensus_error(&data).unwrap();
    assert!(e5 < e0 * 0.5);
    assert!(e5 > 0.0);
}

/// The gossip training loop runs end to end through the facade.
#[test]
fn gossip_training_end_to_end() {
    let mut cfg = TrainConfig::new(
        Workload::AlexNetMnist,
        Topology::ring(4),
        StrategyKind::Psgd, // ignored
    );
    cfg.rounds = 30;
    cfg.train_examples = 1024;
    cfg.test_examples = 256;
    cfg.batch_per_worker = 16;
    cfg.local_lr = 0.05;
    cfg.optimizer = OptimizerKind::Sgd;
    cfg.eval_every = 0;
    let report = train_gossip(&cfg);
    assert_eq!(report.records.len(), 30);
    assert!(report.final_eval.accuracy > 0.3);
}

/// Non-IID shards hurt the sign methods more than exact averaging.
#[test]
fn non_iid_shards_stress_sign_methods() {
    let run = |strategy: StrategyKind, skew: Option<f64>| {
        let mut cfg = TrainConfig::new(Workload::AlexNetMnist, Topology::ring(4), strategy);
        cfg.rounds = 120;
        cfg.train_examples = 4096;
        cfg.test_examples = 1024;
        cfg.batch_per_worker = 32;
        cfg.local_lr = if matches!(strategy, StrategyKind::Psgd) {
            0.1
        } else {
            0.01
        };
        cfg.eval_every = 0;
        cfg.data_skew = skew;
        train(&cfg).final_eval.accuracy
    };
    let psgd_iid = run(StrategyKind::Psgd, None);
    let psgd_skew = run(StrategyKind::Psgd, Some(0.1));
    assert!(
        psgd_iid - psgd_skew < 0.15,
        "PSGD should tolerate skew: {psgd_iid} vs {psgd_skew}"
    );
    let sign_iid = run(StrategyKind::SignMajority, None);
    let sign_skew = run(StrategyKind::SignMajority, Some(0.1));
    // The sign method must degrade at least as much as exact averaging
    // (its majority vote has no way to weight minority-class gradients).
    assert!(
        sign_iid - sign_skew >= psgd_iid - psgd_skew - 0.05,
        "sign degradation ({sign_iid} -> {sign_skew}) should be at least PSGD's \
         ({psgd_iid} -> {psgd_skew})"
    );
}

/// The related-work quantizers are unbiased and cost more than one bit.
#[test]
fn quantizers_unbiased_and_multibit() {
    let mut rng = FastRng::new(6, 0);
    let grad: Vec<f32> = (0..256).map(|_| rng.next_f64() as f32 - 0.5).collect();
    let trials = 20_000;
    let mut tern_mean = vec![0.0f64; grad.len()];
    let mut qsgd_mean = vec![0.0f64; grad.len()];
    let mut tern_bits = 0usize;
    let mut qsgd_bits = 0usize;
    for _ in 0..trials {
        let t = terngrad(&grad, &mut rng);
        let q = qsgd(&grad, 4, &mut rng);
        tern_bits = t.wire_bits();
        qsgd_bits = q.wire_bits();
        for ((tm, qm), (tv, qv)) in tern_mean
            .iter_mut()
            .zip(&mut qsgd_mean)
            .zip(t.to_values().into_iter().zip(q.to_values()))
        {
            *tm += f64::from(tv) / f64::from(trials as u32);
            *qm += f64::from(qv) / f64::from(trials as u32);
        }
    }
    for (j, &g) in grad.iter().enumerate() {
        assert!(
            (tern_mean[j] - f64::from(g)).abs() < 0.03,
            "terngrad coord {j}"
        );
        assert!((qsgd_mean[j] - f64::from(g)).abs() < 0.03, "qsgd coord {j}");
    }
    assert!(tern_bits > grad.len(), "ternary > 1 bit/coord");
    assert!(qsgd_bits < 32 * grad.len(), "QSGD ≪ fp32");
}

/// Top-K support union grows along a MAR chain — the sparsity/MAR mismatch.
#[test]
fn topk_support_union_grows() {
    let growth = support_union_growth(2000, 100, 12, 5);
    assert!(growth.last().expect("non-empty") > &700);
    // And the compressor's error feedback works through the facade.
    let mut topk = TopK::new(4);
    let msg = topk.compress(&[5.0, 0.1, -3.0, 0.2, 2.0, -0.05, 1.0, 0.3]);
    assert_eq!(msg.nnz(), 4);
}

/// PowerSGD compresses hard and reconstructs low-rank structure.
#[test]
fn powersgd_end_to_end() {
    let d = 400;
    let mut comp = PowerSgd::new(d, 2, 3);
    let grad = vec![0.05f32; d];
    let factors = comp.compress(&grad);
    assert!(factors.wire_bits() < 32 * d / 3);
    let decoded = comp.decode(&factors);
    assert_eq!(decoded.len(), d);
    // A constant gradient is rank-1: reconstruction should be close even in
    // round one (after orthonormalization the single direction is found).
    let err: f32 = decoded
        .iter()
        .zip(&grad)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    assert!(err < 0.05, "max reconstruction error {err}");
}
