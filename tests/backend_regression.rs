//! Backend-equivalence regression suite for full training runs.
//!
//! The pinned contract: a training run with
//! [`TrainConfig::collective_backend`] set to [`Backend::Threaded`] is
//! **bit-identical** to the default simulator run — every word of every
//! [`TrainReport`] record, every telemetry event (up to the `backend`/`clock`
//! tag naming the transport), clean and under a mid-run fault storm,
//! with and without `parallel_workers`, and across a mid-storm
//! snapshot→resume split exactly as `tests/checkpoint.rs` pins for the
//! simulator.

use marsit::prelude::*;

fn base_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::new(
        Workload::AlexNetMnist,
        Topology::ring(8),
        StrategyKind::Marsit { k: Some(4) },
    );
    cfg.rounds = 8;
    cfg.train_examples = 512;
    cfg.test_examples = 128;
    cfg.eval_every = 4;
    cfg.local_lr = 0.1;
    cfg.marsit_global_lr = 0.01;
    cfg
}

fn storm() -> FaultPlan {
    FaultPlan::seeded(31)
        .with_link_drop(0.05)
        .with_straggler(2, 3.0)
        .with_crash_event(3, 2)
        .with_rejoin(3, 6)
}

/// Strips the transport tag from telemetry JSONL so logs produced by
/// different backends become comparable; the tag values themselves are
/// asserted separately.
fn normalize(jsonl: &str) -> String {
    jsonl
        .replace(",\"backend\":\"threaded\",\"clock\":\"real\"", "")
        .replace(",\"backend\":\"simulator\",\"clock\":\"simulated\"", "")
}

fn run_tagged(cfg: &TrainConfig) -> (TrainReport, String) {
    let tel = Telemetry::recording();
    let mut cfg = cfg.clone();
    cfg.telemetry = tel.clone();
    let report = train(&cfg);
    (report, tel.events_jsonl())
}

fn assert_threaded_matches_simulator(cfg: &TrainConfig) {
    let (reference, ref_log) = run_tagged(cfg);

    let mut threaded_cfg = cfg.clone();
    threaded_cfg.collective_backend = Backend::Threaded;
    let (threaded, thr_log) = run_tagged(&threaded_cfg);

    assert_eq!(reference, threaded, "reports diverged across backends");
    assert_eq!(
        normalize(&ref_log),
        normalize(&thr_log),
        "telemetry diverged across backends"
    );
    // The threaded log must actually be tagged (ring runs emit hop events).
    assert!(thr_log.contains("\"backend\":\"threaded\""));
    assert!(!ref_log.contains("\"backend\":"));
}

#[test]
fn threaded_training_is_bit_identical_clean() {
    assert_threaded_matches_simulator(&base_cfg());
}

#[test]
fn threaded_training_is_bit_identical_under_fault_storm() {
    let mut cfg = base_cfg();
    cfg.fault_plan = storm();
    assert_threaded_matches_simulator(&cfg);
}

#[test]
fn threaded_training_is_bit_identical_on_torus_without_schedule() {
    let mut cfg = base_cfg();
    cfg.topology = Topology::torus(2, 4);
    cfg.strategy = StrategyKind::Marsit { k: None };
    cfg.fault_plan = FaultPlan::seeded(47).with_link_drop(0.05);
    assert_threaded_matches_simulator(&cfg);
}

/// `parallel_workers` parallelizes the gradient phase; the threaded backend
/// parallelizes the collective. Composing them must still be bit-identical
/// to the fully sequential run.
#[test]
fn threaded_backend_composes_with_parallel_workers() {
    let mut sequential = base_cfg();
    sequential.fault_plan = storm();
    sequential.parallel_workers = false;
    let (reference, ref_log) = run_tagged(&sequential);

    let mut both = sequential.clone();
    both.parallel_workers = true;
    both.collective_backend = Backend::Threaded;
    let (got, got_log) = run_tagged(&both);

    assert_eq!(reference, got, "parallel+threaded diverged from sequential");
    assert_eq!(normalize(&ref_log), normalize(&got_log));
}

/// Mid-storm snapshot→resume on the threaded backend, following the
/// `tests/checkpoint.rs` oracle: interrupt inside the crash window, restore
/// into a fresh state sharing the telemetry handle, and finish. The resumed
/// run must equal the uninterrupted threaded run — which itself equals the
/// simulator run by the tests above.
#[test]
fn threaded_resume_is_bit_identical_mid_storm() {
    let mut cfg = base_cfg();
    cfg.fault_plan = storm();
    cfg.collective_backend = Backend::Threaded;

    let (full, full_log) = run_tagged(&cfg);

    for split in [2, 4] {
        let tel = Telemetry::recording();
        let mut split_cfg = cfg.clone();
        split_cfg.telemetry = tel.clone();
        let mut state = TrainerState::new(&split_cfg);
        for _ in 0..split {
            state.step();
        }
        let snap = state.snapshot();
        let parsed = TrainSnapshot::from_json(&snap.to_json()).expect("snapshot parses");
        drop(state);

        let mut resumed = TrainerState::restore(&split_cfg, &parsed);
        while !resumed.is_done() {
            resumed.step();
        }
        assert_eq!(
            full,
            resumed.finish(),
            "threaded resume diverged (split at {split})"
        );
        assert_eq!(
            full_log,
            tel.events_jsonl(),
            "threaded resume telemetry diverged (split at {split})"
        );
    }
}

#[test]
#[should_panic(expected = "only supported for the Marsit strategy")]
fn non_marsit_strategy_rejects_threaded_backend() {
    let mut cfg = base_cfg();
    cfg.strategy = StrategyKind::Psgd;
    cfg.collective_backend = Backend::Threaded;
    let _ = train(&cfg);
}

#[test]
#[should_panic(expected = "process backend is driven externally")]
fn process_backend_is_rejected_by_the_trainer() {
    let mut cfg = base_cfg();
    cfg.collective_backend = Backend::Process;
    let _ = train(&cfg);
}
