//! Cross-rank trace merge and straggler-detection integration tests.
//!
//! These drive the *real* multi-process backend: one OS process per rank
//! over localhost TCP, wall-clock tracing on, telemetry batches streamed to
//! the hub's collector at each round's flush point. The pinned contracts:
//!
//! - merging the per-rank logs is deterministic — two same-seed runs yield
//!   byte-identical causally-ordered traces once wall-clock fields are
//!   stripped, and the merge itself never consults file order;
//! - the online detector flags exactly the rank whose compute we slowed
//!   down, with zero false positives on a clean run;
//! - with the collector disabled, the tracing side channel puts exactly
//!   zero bytes on the wire.

use marsit::core::transport::{Scenario, TopoKind, TraceRunConfig, TracedRun};
use marsit::core::CombineKind;
use marsit::telemetry::health::HealthEvent;
use marsit::telemetry::report::{merge_logs, strip_wall_clock, validate};

fn worker_exe() -> &'static str {
    env!("CARGO_BIN_EXE_transport_worker")
}

fn ring4() -> Scenario {
    Scenario {
        topo: TopoKind::Ring,
        world: 4,
        d: 1024,
        seed: 0x7ACE,
        round: 0,
        // Clean schedule: every planned transfer delivers, so all ranks
        // trace the same seq set every round.
        drop_p: None,
        combine: CombineKind::Weighted,
    }
}

fn run(cfg: TraceRunConfig) -> TracedRun {
    ring4()
        .run_process_traced(worker_exe(), cfg)
        .expect("traced process run")
}

fn stripped_jsonl(run: &TracedRun) -> String {
    let mut events = run.merged.clone();
    strip_wall_clock(&mut events);
    let mut out = String::new();
    for ev in &events {
        ev.write_jsonl(&mut out);
        out.push('\n');
    }
    out
}

#[test]
fn same_seed_runs_merge_to_byte_identical_traces() {
    let cfg = TraceRunConfig {
        rounds: 3,
        compute_ns: 2_000_000,
        straggler: None,
        collect: true,
    };
    let a = run(cfg);
    let b = run(cfg);
    // Wall clocks differ between the two runs; the causal trace must not.
    let sa = stripped_jsonl(&a);
    assert_eq!(sa, stripped_jsonl(&b), "merged traces diverged across runs");
    assert!(!sa.is_empty());

    // The merged log is a valid telemetry stream in its own right.
    assert_eq!(validate(&a.merged), Vec::<String>::new());

    // Causal order: run_meta first (deduplicated to one), then hops by
    // absolute expanded-step seq, non-decreasing.
    assert_eq!(a.merged[0].name, "run_meta");
    assert_eq!(
        a.merged.iter().filter(|e| e.name == "run_meta").count(),
        1,
        "identical per-rank run_meta events must collapse to one"
    );
    let seqs: Vec<u64> = a
        .merged
        .iter()
        .filter(|e| e.name == "hop")
        .map(|e| e.u64_field("seq").expect("hop has seq"))
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] <= w[1]), "seqs not sorted");
    // Ring(4) on a clean schedule: 6 steps/round, 4 transfers each, and the
    // per-round seq windows are aligned across ranks (3 rounds × 6 steps).
    assert_eq!(seqs.len(), 3 * 6 * 4);
    assert_eq!(seqs.last(), Some(&17));

    // Every hop is tagged with the transport that produced it and carries
    // propagated context.
    for ev in a.merged.iter().filter(|e| e.name == "hop") {
        assert_eq!(ev.str_field("backend"), Some("process"));
        assert_eq!(ev.str_field("clock"), Some("real"));
        assert!(ev.u64_field("round").is_some(), "hop missing round");
    }

    // The merge is file-order-invariant: feeding the merged events back in
    // as differently-ordered shards reproduces the same sequence.
    let shards: Vec<Vec<marsit::telemetry::Event>> = a
        .merged
        .chunks(5)
        .rev()
        .map(<[marsit::telemetry::Event]>::to_vec)
        .collect();
    let remerged = merge_logs(&shards);
    let mut lines = String::new();
    for ev in &remerged {
        ev.write_jsonl(&mut lines);
        lines.push('\n');
    }
    let mut expect = String::new();
    for ev in &a.merged {
        ev.write_jsonl(&mut expect);
        expect.push('\n');
    }
    assert_eq!(lines, expect, "merge depends on shard order");
}

#[test]
fn detector_flags_exactly_the_injected_straggler() {
    let slow_rank = 2;
    let out = run(TraceRunConfig {
        rounds: 6,
        compute_ns: 20_000_000,
        straggler: Some((slow_rank, 2.5)),
        collect: true,
    });
    let stragglers: Vec<&HealthEvent> = out
        .health
        .iter()
        .filter(|e| matches!(e, HealthEvent::StragglerSuspected { .. }))
        .collect();
    assert!(!stragglers.is_empty(), "injected straggler went undetected");
    for ev in &out.health {
        match ev {
            HealthEvent::StragglerSuspected { rank, .. } => {
                assert_eq!(*rank, slow_rank, "wrong rank suspected: {ev:?}");
            }
            // Localhost transit is microseconds; nothing else may fire.
            other => panic!("false positive: {other:?}"),
        }
    }
    assert_eq!(
        out.fault_stats.stragglers_suspected,
        stragglers.len() as u64
    );
    assert_eq!(out.fault_stats.links_degraded, 0);
    assert_eq!(out.fault_stats.ranks_silent, 0);
}

#[test]
fn clean_run_raises_no_health_events() {
    let out = run(TraceRunConfig {
        rounds: 4,
        compute_ns: 5_000_000,
        straggler: None,
        collect: true,
    });
    assert_eq!(out.health, Vec::new(), "false positives on a clean run");
    assert_eq!(out.fault_stats.stragglers_suspected, 0);
    assert!(out.side_channel_bytes > 0, "collector saw no traffic");
}

#[test]
fn disabled_collector_puts_zero_bytes_on_the_wire() {
    let out = run(TraceRunConfig {
        rounds: 2,
        compute_ns: 0,
        straggler: None,
        collect: false,
    });
    assert_eq!(out.side_channel_bytes, 0, "tracing leaked onto the wire");
    assert!(out.merged.is_empty());
    assert!(out.health.is_empty());
}
