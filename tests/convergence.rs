//! End-to-end convergence behaviour across strategies — the integration
//! counterpart of the paper's accuracy claims.

use marsit::prelude::*;

fn cfg(strategy: StrategyKind, m: usize, rounds: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(Workload::AlexNetMnist, Topology::ring(m), strategy);
    cfg.rounds = rounds;
    cfg.train_examples = 4096;
    cfg.test_examples = 1024;
    cfg.batch_per_worker = 32;
    cfg.local_lr = 0.01;
    cfg.marsit_global_lr = 0.002;
    cfg.eval_every = 0;
    cfg
}

#[test]
fn marsit_matches_psgd_within_margin() {
    // Table 2's headline: Marsit ends close to non-compressed training.
    let mut psgd_cfg = cfg(StrategyKind::Psgd, 4, 150);
    psgd_cfg.local_lr = 0.1;
    let psgd = train(&psgd_cfg);
    let marsit = train(&cfg(StrategyKind::Marsit { k: Some(50) }, 4, 150));
    assert!(!psgd.diverged && !marsit.diverged);
    assert!(
        psgd.final_eval.accuracy - marsit.final_eval.accuracy < 0.05,
        "PSGD {} vs Marsit {}",
        psgd.final_eval.accuracy,
        marsit.final_eval.accuracy
    );
    assert!(marsit.final_eval.accuracy > 0.9);
}

#[test]
fn compressed_baselines_learn_but_lag() {
    // signSGD-family baselines converge (no divergence) on the easy proxy.
    // SSDM's stochastic signs carry far more variance than deterministic
    // signs (each coordinate's tilt is only g_j/(2‖g‖)), so it needs more
    // rounds to reach the same bar — exactly the slower convergence the
    // paper's Fig 4 shows for it.
    for (strategy, rounds, bar) in [
        (StrategyKind::SignMajority, 150, 0.7),
        (StrategyKind::EfSign, 150, 0.7),
        (StrategyKind::Ssdm, 400, 0.7),
    ] {
        let report = train(&cfg(strategy, 4, rounds));
        assert!(!report.diverged, "{strategy}");
        assert!(
            report.final_eval.accuracy > bar,
            "{strategy} accuracy {}",
            report.final_eval.accuracy
        );
    }
}

#[test]
fn cascading_underperforms_and_degrades_with_m() {
    // Table 1's motivation: cascading gets worse as M grows while PSGD
    // improves (bigger effective batch).
    let casc3 = train(&cfg(StrategyKind::Cascading, 3, 120));
    let casc8 = train(&cfg(StrategyKind::Cascading, 8, 120));
    let marsit8 = train(&cfg(StrategyKind::Marsit { k: None }, 8, 120));
    assert!(
        marsit8.final_eval.accuracy > casc8.final_eval.accuracy + 0.05,
        "Marsit {} should clearly beat cascading {}",
        marsit8.final_eval.accuracy,
        casc8.final_eval.accuracy
    );
    assert!(
        casc3.final_eval.accuracy >= casc8.final_eval.accuracy - 0.02,
        "cascading should not improve with M: M=3 {} vs M=8 {}",
        casc3.final_eval.accuracy,
        casc8.final_eval.accuracy
    );
}

#[test]
fn matching_rate_ordering_fig1b() {
    // PSGD matches the exact mean perfectly; Marsit's one-bit consensus
    // matches well; the cascade hovers near a coin flip.
    let avg = |r: &TrainReport| {
        r.records.iter().map(|x| x.matching_rate).sum::<f64>() / r.records.len() as f64
    };
    let psgd = {
        let mut c = cfg(StrategyKind::Psgd, 3, 40);
        c.local_lr = 0.1;
        train(&c)
    };
    let marsit = train(&cfg(StrategyKind::Marsit { k: None }, 3, 40));
    let cascading = train(&cfg(StrategyKind::Cascading, 3, 40));
    assert!(avg(&psgd) > 0.999, "PSGD match {}", avg(&psgd));
    assert!(
        avg(&marsit) > avg(&cascading),
        "{} vs {}",
        avg(&marsit),
        avg(&cascading)
    );
    assert!(
        avg(&cascading) < 0.75,
        "cascading match rate should be poor: {}",
        avg(&cascading)
    );
}

#[test]
fn more_workers_speed_up_marsit() {
    // Theorem 1's linear-speedup direction: at fixed rounds, more workers
    // (bigger effective batch + averaged signs) do not hurt.
    let m2 = train(&cfg(StrategyKind::Marsit { k: None }, 2, 120));
    let m8 = train(&cfg(StrategyKind::Marsit { k: None }, 8, 120));
    assert!(
        m8.final_eval.accuracy >= m2.final_eval.accuracy - 0.03,
        "M=8 {} should be at least M=2 {}",
        m8.final_eval.accuracy,
        m2.final_eval.accuracy
    );
}

#[test]
fn adam_driven_sentiment_task_learns() {
    // The DistilBERT/IMDb stand-in with the paper's Adam optimizer.
    let mut c = TrainConfig::new(
        Workload::DistilBertImdb,
        Topology::ring(4),
        StrategyKind::Marsit { k: Some(40) },
    );
    c.rounds = 120;
    c.train_examples = 4096;
    c.test_examples = 1024;
    c.batch_per_worker = 16;
    c.optimizer = OptimizerKind::Adam;
    c.local_lr = 0.002;
    c.marsit_global_lr = 0.002;
    c.eval_every = 0;
    let report = train(&c);
    assert!(!report.diverged);
    assert!(
        report.final_eval.accuracy > 0.8,
        "sentiment accuracy {}",
        report.final_eval.accuracy
    );
}
