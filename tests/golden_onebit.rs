//! Golden-value pins for the one-bit hot path.
//!
//! The fused ⊙ kernel and the reusable round workspace are pure
//! performance work: no consensus bit, RNG draw, or telemetry byte may
//! change. These constants were dumped from the pre-fusion implementation
//! (the composed `keep_mask` → `transient` → `and/or/xor` pipeline with
//! per-round allocations) and pin both `Marsit::synchronize` outcomes and
//! raw collective reductions word-for-word. If any of them moves, the
//! "bit-identical" contract of the fused path is broken.

use marsit::collectives::ring::ring_allreduce_onebit;
use marsit::collectives::segring::segring_allreduce_onebit;
use marsit::collectives::torus::torus_allreduce_onebit;
use marsit::collectives::tree::tree_allreduce_onebit;
use marsit::collectives::CombineCtx;
use marsit::core::ominus::combine_weighted_assign;
use marsit::prelude::*;

/// Deterministic per-worker updates, one RNG stream per worker.
fn updates(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..m)
        .map(|w| {
            let mut rng = FastRng::new(seed, w as u64);
            (0..d).map(|_| (rng.next_f64() as f32) - 0.5).collect()
        })
        .collect()
}

/// Runs `rounds` synchronizations and returns, per round, the packed words
/// of the consensus sign vector plus the full-precision flag.
fn run_rounds(
    cfg: MarsitConfig,
    m: usize,
    d: usize,
    seed: u64,
    topology: Topology,
    rounds: usize,
) -> Vec<(Vec<u64>, bool)> {
    let ups = updates(m, d, seed);
    let mut marsit = Marsit::new(cfg, m, d);
    (0..rounds)
        .map(|_| {
            let out = marsit.synchronize(&ups, topology);
            (
                SignVec::from_signs(&out.global_update).as_words().to_vec(),
                out.full_precision,
            )
        })
        .collect()
}

fn assert_rounds(got: &[(Vec<u64>, bool)], want: &[(&[u64], bool)], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: round count");
    for (t, ((got_words, got_fp), (want_words, want_fp))) in got.iter().zip(want).enumerate() {
        assert_eq!(
            got_fp, want_fp,
            "{label} t={t}: full_precision flag changed"
        );
        assert_eq!(
            got_words.as_slice(),
            *want_words,
            "{label} t={t}: consensus words changed"
        );
    }
}

#[test]
fn golden_ring8_d300() {
    let cfg = MarsitConfig::new(SyncSchedule::every(3), 0.01, 42);
    let got = run_rounds(cfg, 8, 300, 5, Topology::ring(8), 4);
    let want: &[(&[u64], bool)] = &[
        (
            &[
                0xeae8cf560cf7cbc6,
                0xbd3b0f78593cab2d,
                0x634820547ede4c6f,
                0xbbca702a994bd7ad,
                0x000007ded4ab4c07,
            ],
            true,
        ),
        (
            &[
                0x50734f16ecfcd7a7,
                0xe1ff53f8467c69b4,
                0x401c17650ce6e4e6,
                0x2bdcbd48b4575351,
                0x000002dc45bb5cdf,
            ],
            false,
        ),
        (
            &[
                0x92a947079ad1d444,
                0x17ef55fbd82e8a64,
                0x770f51f626fbeccc,
                0xd3c8102f1d4e09be,
                0x000009c6968f545b,
            ],
            false,
        ),
        (
            &[
                0xeae8cf560cf7cbc6,
                0xbd3b0f78593cab2d,
                0x634820547e5e4c6f,
                0xbbca702a994bd7ad,
                0x000007ded4ab4c05,
            ],
            true,
        ),
    ];
    assert_rounds(&got, want, "ring8_d300");
}

#[test]
fn golden_torus2x4_d257() {
    let cfg = MarsitConfig::new(SyncSchedule::every(3), 0.01, 42);
    let got = run_rounds(cfg, 8, 257, 5, Topology::torus(2, 4), 4);
    let want: &[(&[u64], bool)] = &[
        (
            &[
                0xeae8cf560cf7cbc6,
                0xbd3b0f78593cab2d,
                0x634820547ede4c6f,
                0xbbca702a994bd7ad,
                0x0000000000000001,
            ],
            true,
        ),
        (
            &[
                0x6c7b2d176cf1c88c,
                0x1e33287b8428aa51,
                0xdc7823434e885efd,
                0x934aea63197cd761,
                0x0000000000000001,
            ],
            false,
        ),
        (
            &[
                0x996a5c065dd1c444,
                0x991d03f0182de33f,
                0xa44d463427e77f0f,
                0x1b6c189a19488f35,
                0x0000000000000000,
            ],
            false,
        ),
        (
            &[
                0xeae0cf560ef7cbc6,
                0xbd3b0f78593ea92d,
                0x630820d47e5e4c6f,
                0xabca702a994bd7ad,
                0x0000000000000001,
            ],
            true,
        ),
    ];
    assert_rounds(&got, want, "torus2x4_d257");
}

#[test]
fn golden_faulty_ring8_d129() {
    let plan = FaultPlan::seeded(99)
        .with_link_drop(0.05)
        .with_straggler(1, 3.0)
        .with_crash(2, 3);
    let cfg = MarsitConfig::new(SyncSchedule::every(5), 0.01, 7).with_fault_plan(plan);
    let got = run_rounds(cfg, 8, 129, 8, Topology::ring(8), 6);
    let want: &[(&[u64], bool)] = &[
        (
            &[0x280fd520e9508957, 0xacc5b8c090c5a05a, 0x0000000000000000],
            true,
        ),
        (
            &[0x5a0ed1286546964f, 0x236f903432517c9c, 0x0000000000000000],
            false,
        ),
        (
            &[0x2b67edc87481c822, 0x276856064c034675, 0x0000000000000001],
            false,
        ),
        (
            &[0x681fcd034d6ea97f, 0xb153b8e2f951a604, 0x0000000000000000],
            false,
        ),
        (
            &[0x2225e50cad64c76f, 0xeada2a0325439c36, 0x0000000000000001],
            false,
        ),
        (
            &[0x280fdd200d408957, 0xaed11a409041a25e, 0x0000000000000000],
            true,
        ),
    ];
    assert_rounds(&got, want, "faulty_ring8_d129");
}

/// The raw collectives under the weighted ⊙, with the per-hop RNG stream
/// derivation the trainer uses: each combine call draws from a fresh
/// `FastRng` keyed by (receiver, segment, step). This pins the fused
/// kernel's word-draw order independently of the Marsit driver.
fn goldens_signs() -> Vec<SignVec> {
    let mut rng = FastRng::new(17, 0);
    (0..6)
        .map(|_| SignVec::bernoulli_uniform(200, 0.5, &mut rng))
        .collect()
}

fn weighted_stream_combine(recv: &SignVec, local: &mut SignVec, ctx: CombineCtx) {
    let stream = ((ctx.receiver as u64) << 40) | ((ctx.segment as u64) << 20) | ctx.step as u64;
    let mut rng = FastRng::new(1234, stream);
    combine_weighted_assign(recv, ctx.received_count, local, ctx.local_count, &mut rng);
}

#[test]
fn golden_collective_ring6_d200() {
    let signs = goldens_signs();
    let (out, _) = ring_allreduce_onebit(&signs, weighted_stream_combine);
    assert_eq!(
        out.as_words(),
        &[
            0x6060cd446634f8ca,
            0xf5e54dffae3b7093,
            0x84cfe36e09c39d14,
            0x0000000000000046,
        ],
        "ring(6) d=200 consensus words changed"
    );
}

#[test]
fn golden_collective_tree4_d200() {
    let signs = goldens_signs();
    let mut combine = weighted_stream_combine;
    let (out, _) = tree_allreduce_onebit(&signs[..4], &mut combine);
    assert_eq!(
        out.as_words(),
        &[
            0xc0f2c0690e9b658c,
            0xda412d5f3d5cf202,
            0x70cd754d99ad681d,
            0x0000000000000077,
        ],
        "tree(4) d=200 consensus words changed"
    );
}

#[test]
fn golden_collective_segring6x3_d200() {
    let signs = goldens_signs();
    let mut combine = weighted_stream_combine;
    let (out, _) = segring_allreduce_onebit(&signs, 3, &mut combine);
    assert_eq!(
        out.as_words(),
        &[
            0xa06f0957ccdca8ca,
            0x7fa1e70ea52d3c3a,
            0xb27af96d8123ca05,
            0x00000000000000c3,
        ],
        "segring(6, S=3) d=200 consensus words changed"
    );
}

/// Torus is covered through `golden_torus2x4_d257` above; this smoke keeps
/// the raw torus collective on the same stream-derived combine exercised
/// so a regression there cannot hide behind the Marsit driver.
#[test]
fn torus_collective_is_deterministic_under_stream_combine() {
    let signs = goldens_signs();
    let (a, _) = torus_allreduce_onebit(&signs, 2, 3, weighted_stream_combine);
    let (b, _) = torus_allreduce_onebit(&signs, 2, 3, weighted_stream_combine);
    assert_eq!(a, b, "torus(2x3) must replay exactly");
}
