//! Crash-safety of the serving stack, attacked from every angle.
//!
//! The journal's contract: a `marsit-journal/1` file truncated at *any*
//! byte — the torn tail a `kill -9` leaves behind — replays to a valid
//! resume state, replay is idempotent, and a server restarted from that
//! state finishes every job **byte-identical** to an uninterrupted run.
//! These tests pin that contract at three levels: pure journal replay
//! (proptest over truncation points), in-process crash-mid-migration
//! recovery, and real SIGKILL of both the whole server binary and a
//! single shard subprocess under the supervisor.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use marsit::models::Workload;
use marsit::serve::{
    encode_record, plan_from_replay, replay_bytes, replay_file, verify_outcome, verify_recovered,
    JobServer, JobSpec, JournalRecord, JournalWriter, MigrationPolicy, ReplayState, ResumePlan,
    ServeConfig, SnapshotRecord, SupervisorConfig, SupervisorHandle,
};
use marsit::simnet::Topology;
use proptest::prelude::*;

/// A fast job for recovery tests: a few rounds on tiny data.
fn tiny_spec(name: &str, seed: u64, rounds: usize) -> JobSpec {
    let mut spec = JobSpec::new(name, Workload::AlexNetMnist, Topology::ring(4));
    spec.rounds = rounds;
    spec.seed = seed;
    spec.train_examples = 128;
    spec.test_examples = 32;
    spec.k = Some(3);
    spec
}

/// A unique scratch directory per test (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("marsit-recovery-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A deterministic synthetic journal: submits, snapshots, a migration,
/// and outcomes, in a realistic interleaving.
fn sample_journal_bytes() -> Vec<u8> {
    let snap = |name: &str, shard: usize, round: u64| {
        JournalRecord::Snapshot(SnapshotRecord {
            name: name.to_string(),
            shard,
            migrations: 0,
            round,
            tel_seq: round * 7,
            snapshot_json: format!("{{\"round\":{round}}}"),
            log: format!("{name} log up to round {round}\n"),
        })
    };
    let records = [
        JournalRecord::Submit {
            spec: tiny_spec("j0", 3, 6),
        },
        JournalRecord::Submit {
            spec: tiny_spec("j1", 4, 6),
        },
        snap("j0", 0, 2),
        JournalRecord::Migrate {
            name: "j0".to_string(),
            from: 0,
            to: 1,
        },
        snap("j1", 1, 3),
        JournalRecord::Outcome(marsit::serve::OutcomeRecord {
            name: "j1".to_string(),
            migrations: 0,
            shard_path: vec![1],
            report_debug: "TrainReport { .. }".to_string(),
            log: "j1 full log\n".to_string(),
        }),
        snap("j0", 1, 4),
    ];
    let mut bytes = Vec::new();
    for (seq, record) in records.iter().enumerate() {
        bytes.extend_from_slice(
            encode_record(seq as u64, record)
                .expect("representable")
                .as_bytes(),
        );
    }
    bytes
}

fn plan_names(plan: &ResumePlan) -> Vec<String> {
    plan.completed
        .iter()
        .map(|o| o.spec.name.clone())
        .chain(plan.resumes.iter().map(|r| r.spec.name.clone()))
        .chain(plan.fresh.iter().map(|s| s.name.clone()))
        .collect()
}

proptest! {
    /// A journal truncated at ANY byte replays to a valid resume state:
    /// the decoded records are a prefix of the untruncated journal, the
    /// valid length never exceeds the cut, and the resume plan puts every
    /// submitted job in exactly one bucket with nothing orphaned.
    #[test]
    fn journal_torn_at_any_byte_yields_valid_resume_state(cut_scale in 0u64..=10_000) {
        let bytes = sample_journal_bytes();
        let full = replay_bytes(&bytes);
        prop_assert!(full.torn.is_none());
        let cut = usize::try_from(bytes.len() as u64 * cut_scale / 10_000).expect("fits");
        let torn = replay_bytes(&bytes[..cut]);

        prop_assert!(torn.valid_len <= cut);
        prop_assert_eq!(torn.next_seq, torn.records.len() as u64);
        prop_assert_eq!(&torn.records[..], &full.records[..torn.records.len()]);
        if cut < bytes.len() && torn.valid_len < cut {
            prop_assert!(torn.torn.is_some());
        }

        let plan = plan_from_replay(&torn);
        let names = plan_names(&plan);
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        prop_assert_eq!(deduped.len(), names.len(), "job in two buckets");
        for name in &names {
            prop_assert!(name == "j0" || name == "j1");
        }
        prop_assert!(plan.orphaned.is_empty());
        // Every resume carries the snapshot it will restore from.
        for resume in &plan.resumes {
            prop_assert!(!resume.snapshot_json.is_empty());
        }
    }

    /// Replaying a journal twice yields the same plan as replaying it
    /// once: the fold over records is idempotent.
    #[test]
    fn journal_replay_is_idempotent(cut_scale in 0u64..=10_000) {
        let bytes = sample_journal_bytes();
        let cut = usize::try_from(bytes.len() as u64 * cut_scale / 10_000).expect("fits");
        let replay = replay_bytes(&bytes[..cut]);

        let mut once = ReplayState::new();
        for (_, record) in &replay.records {
            once.apply(record);
        }
        let mut twice = ReplayState::new();
        for (_, record) in replay.records.iter().chain(replay.records.iter()) {
            twice.apply(record);
        }
        let (p1, p2) = (once.plan(), twice.plan());
        prop_assert_eq!(p1.completed, p2.completed);
        prop_assert_eq!(p1.resumes, p2.resumes);
        prop_assert_eq!(p1.fresh, p2.fresh);
        prop_assert_eq!(p1.orphaned, p2.orphaned);
    }
}

/// Crash-mid-migration: the journal holds the job's pre-migration
/// snapshot and the migrate record, but the crash ate the outcome. The
/// restarted server must resume from the snapshot and finish the job
/// byte-identical to a solo run.
#[test]
fn crash_mid_migration_resumes_byte_identically() {
    let dir = scratch("midmig");
    let path = dir.join("journal.log");
    let journal = Arc::new(Mutex::new(
        JournalWriter::create(&path).expect("create journal"),
    ));
    let mut cfg = ServeConfig::new(2);
    cfg.tick_rounds = 1;
    cfg.snapshot_every_ticks = 1;
    cfg.migration = MigrationPolicy::Seeded {
        seed: 11,
        per_mille: 800,
    };
    let mut handle = JobServer::start_journaled(cfg, Arc::clone(&journal));
    handle.submit(tiny_spec("m0", 21, 8));
    handle.submit(tiny_spec("m1", 22, 8));
    let _ = handle.finish();

    // "Crash" immediately after the first migrate record: truncate the
    // journal there, dropping that job's outcome.
    let bytes = std::fs::read(&path).expect("read journal");
    let replay = replay_bytes(&bytes);
    assert!(replay.torn.is_none());
    let mut offset = 0usize;
    let mut cut = None;
    for (seq, record) in &replay.records {
        offset += encode_record(*seq, record).expect("representable").len();
        if let JournalRecord::Migrate { name, .. } = record {
            cut = Some((offset, name.clone()));
            break;
        }
    }
    let (cut, migrated) = cut.expect("seeded policy at 800 per-mille migrated at least once");
    std::fs::write(&path, &bytes[..cut]).expect("truncate journal");

    let torn = replay_file(&path).expect("reread journal");
    let plan = plan_from_replay(&torn);
    assert!(
        plan.resumes.iter().any(|r| r.spec.name == migrated),
        "mid-migration job must be resumable from its journaled snapshot"
    );
    assert!(
        !plan.completed.iter().any(|o| o.spec.name == migrated),
        "the crash ate the outcome; it must not replay as completed"
    );

    // Restart, resume, and verify every job against its solo run.
    let writer = JournalWriter::resume(&path, &torn).expect("resume journal");
    let mut cfg = ServeConfig::new(2);
    cfg.tick_rounds = 1;
    cfg.snapshot_every_ticks = 1;
    let mut handle = JobServer::start_journaled(cfg, Arc::new(Mutex::new(writer)));
    let mut expected = plan.completed.len();
    for resume in plan.resumes {
        expected += 1;
        handle.submit_resume(resume);
    }
    for spec in plan.fresh {
        expected += 1;
        handle.submit(spec);
    }
    assert_eq!(expected, 2, "both jobs accounted for across the crash");
    let report = handle.finish();
    for outcome in &plan.completed {
        verify_recovered(outcome).expect("recovered outcome byte-identical");
    }
    for outcome in &report.outcomes {
        verify_outcome(outcome).expect("resumed outcome byte-identical");
    }
    assert!(
        report.outcomes.iter().any(|o| o.spec.name == migrated),
        "the mid-migration job finished in the restarted server"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Real `kill -9` of the whole serving binary mid-storm: a restarted
/// server replays the journal and finishes all jobs, `--verify` proving
/// every byte survived the crash.
#[test]
fn sigkilled_server_recovers_and_verifies_all_jobs() {
    let dir = scratch("sigkill");
    let queue = dir.join("queue.txt");
    let journal = dir.join("journal.log");
    let mut lines = String::new();
    for i in 0..6 {
        lines.push_str(&format!(
            "name=k{i} workload=alexnet_mnist topo=ring:4 k=3 seed={} rounds=25 \
             examples=128 test=32\n",
            i + 40
        ));
    }
    std::fs::write(&queue, lines).expect("write queue");

    let bin = env!("CARGO_BIN_EXE_marsit_serve");
    let mut child = Command::new(bin)
        .args([
            queue.to_str().expect("utf8 path"),
            "--shards",
            "2",
            "--tick",
            "2",
            "--snapshot-every",
            "1",
            "--journal",
            journal.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");
    std::thread::sleep(Duration::from_millis(700));
    child.kill().expect("SIGKILL server"); // kill() is SIGKILL on unix
    child.wait().expect("reap server");

    let output = Command::new(bin)
        .args([
            queue.to_str().expect("utf8 path"),
            "--shards",
            "2",
            "--tick",
            "2",
            "--snapshot-every",
            "1",
            "--journal",
            journal.to_str().expect("utf8 path"),
            "--verify",
        ])
        .output()
        .expect("restart server");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "restarted server failed: {stderr}");
    assert!(
        stderr.contains("all 6 jobs byte-identical to solo runs"),
        "verify must cover all 6 jobs: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `kill -9` one shard subprocess under the supervisor: the shard is
/// restarted with backoff and its jobs resume from their last pushed
/// snapshots, byte-identical.
#[test]
fn supervisor_survives_shard_sigkill() {
    let mut cfg = SupervisorConfig::new(2);
    cfg.tick_rounds = 2;
    cfg.snapshot_every_ticks = 1;
    cfg.worker_bin = Some(PathBuf::from(env!("CARGO_BIN_EXE_marsit_serve")));
    let mut handle = SupervisorHandle::start(cfg, None).expect("start supervisor");
    for i in 0..4 {
        handle.submit(tiny_spec(&format!("p{i}"), 60 + i, 30));
    }

    // Wait for shard 0 to be up and working, then SIGKILL it.
    let mut pid = None;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        if let Some(p) = handle.shard_pid(0) {
            pid = Some(p);
            break;
        }
    }
    let pid = pid.expect("shard 0 came up");
    std::thread::sleep(Duration::from_millis(300));
    let killed = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(killed, "kill -9 {pid} failed");

    let report = handle.finish().expect("supervised serve completes");
    assert_eq!(report.outcomes.len(), 4, "every job finished");
    assert!(
        report.shard_deaths >= 1,
        "the killed shard must be detected as dead"
    );
    for outcome in &report.outcomes {
        verify_recovered(outcome).expect("outcome byte-identical across shard death");
    }
}

/// An idle server must not busy-wait: with the exponential idle backoff
/// (1 → 16 ms) the total wakeups of 8 idle shards over ~600 ms stay
/// under a tenth of what 1 ms polling would produce.
#[test]
fn idle_shards_back_off_instead_of_busy_waiting() {
    let cfg = ServeConfig::new(8);
    let idle_for = Duration::from_millis(600);
    let handle = JobServer::start(cfg);
    std::thread::sleep(idle_for);
    let report = handle.finish();

    let total_wakeups: u64 = report.shards.iter().map(|s| s.idle_wakeups).sum();
    let polling_wakeups = 8 * u64::try_from(idle_for.as_millis()).expect("small");
    assert!(
        total_wakeups * 10 < polling_wakeups,
        "idle wakeups {total_wakeups} not under a tenth of 1 ms polling ({polling_wakeups})"
    );
    assert!(
        total_wakeups > 0,
        "shards still wake occasionally to check for work"
    );
}

/// A malformed queue is a typed, per-line diagnostic and exit code 2 —
/// never a panic, and nothing is submitted.
#[test]
fn malformed_queue_exits_with_per_line_diagnostics() {
    let dir = scratch("badqueue");
    let queue = dir.join("queue.txt");
    std::fs::write(
        &queue,
        "name=ok0 workload=alexnet_mnist topo=ring:4 k=3 seed=1 rounds=4\n\
         name=bad workload=not_a_model topo=ring:4 rounds=4\n\
         # comment\n\
         name=ok0 workload=alexnet_mnist topo=ring:4 k=3 seed=2 rounds=4\n\
         rounds=nonsense\n",
    )
    .expect("write queue");

    let output = Command::new(env!("CARGO_BIN_EXE_marsit_serve"))
        .arg(queue.to_str().expect("utf8 path"))
        .output()
        .expect("run server");
    assert_eq!(output.status.code(), Some(2), "malformed queue exits 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("line 2"),
        "diagnoses the bad workload: {stderr}"
    );
    assert!(
        stderr.contains("line 4"),
        "diagnoses the duplicate name: {stderr}"
    );
    assert!(
        stderr.contains("line 5"),
        "diagnoses the missing name: {stderr}"
    );
    assert!(stderr.contains("nothing submitted"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
