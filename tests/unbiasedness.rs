//! System-level statistical properties: the `⊙` pipeline's unbiasedness
//! through the real collectives, and the theory-module bounds.

use marsit::collectives::ring::ring_allreduce_onebit;
use marsit::collectives::torus::torus_allreduce_onebit;
use marsit::core::ominus::combine_weighted_assign;
use marsit::core::theory;
use marsit::prelude::*;
use marsit::tensor::stats::binomial_ci_halfwidth;

/// E[consensus bit] through the full ring pipeline must equal the mean of
/// the workers' bits — the property Theorem 1 rests on.
#[test]
fn ring_onebit_allreduce_is_unbiased() {
    let m = 5;
    let d = 40;
    let mut seed_rng = FastRng::new(3, 0);
    let signs: Vec<SignVec> = (0..m)
        .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut seed_rng))
        .collect();
    let trials = 20_000;
    let mut ones = vec![0u32; d];
    for trial in 0..trials {
        let mut rng = FastRng::new(1000 + trial, 0);
        let (out, _) = ring_allreduce_onebit(&signs, |r, l, ctx| {
            combine_weighted_assign(r, ctx.received_count, l, ctx.local_count, &mut rng);
        });
        for (j, o) in ones.iter_mut().enumerate() {
            *o += u32::from(out.get(j));
        }
    }
    for (j, &o) in ones.iter().enumerate() {
        let measured = f64::from(o) / f64::from(trials as u32);
        let expected = signs.iter().filter(|v| v.get(j)).count() as f64 / m as f64;
        // 5σ binomial interval: per-comparison false-positive ≈ 5.7e-7.
        let hw = binomial_ci_halfwidth(expected, trials);
        assert!(
            (measured - expected).abs() <= hw + 1e-12,
            "coord {j}: {measured} vs {expected} (±{hw})"
        );
    }
}

/// Same property through the 2D-torus pipeline with its weighted combines.
#[test]
fn torus_onebit_allreduce_is_unbiased() {
    let (rows, cols) = (2, 3);
    let m = rows * cols;
    let d = 24;
    let mut seed_rng = FastRng::new(8, 0);
    let signs: Vec<SignVec> = (0..m)
        .map(|_| SignVec::bernoulli_uniform(d, 0.5, &mut seed_rng))
        .collect();
    let trials = 20_000;
    let mut ones = vec![0u32; d];
    for trial in 0..trials {
        let mut rng = FastRng::new(5000 + trial, 0);
        let (out, _) = torus_allreduce_onebit(&signs, rows, cols, |r, l, ctx| {
            combine_weighted_assign(r, ctx.received_count, l, ctx.local_count, &mut rng);
        });
        for (j, o) in ones.iter_mut().enumerate() {
            *o += u32::from(out.get(j));
        }
    }
    for (j, &o) in ones.iter().enumerate() {
        let measured = f64::from(o) / f64::from(trials as u32);
        let expected = signs.iter().filter(|v| v.get(j)).count() as f64 / m as f64;
        // 5σ binomial interval: per-comparison false-positive ≈ 5.7e-7.
        let hw = binomial_ci_halfwidth(expected, trials);
        assert!(
            (measured - expected).abs() <= hw + 1e-12,
            "coord {j}: {measured} vs {expected} (±{hw})"
        );
    }
}

/// Theorems 2 and 3, empirically: PS deviation stays bounded while the
/// cascading deviation explodes with the chain length.
#[test]
fn deviation_bounds_shape() {
    let d = 48;
    let mut previous_cascading = 0.0;
    let mut previous_ps = f64::INFINITY;
    for m in [2usize, 4, 6, 8] {
        let est = theory::estimate_deviations(d, m, 60, 7);
        assert!(est.ps < theory::ps_deviation_bound(d, (d as f64).sqrt()));
        assert!(est.cascading < theory::cascading_deviation_bound(d, m, (d as f64).sqrt()));
        assert!(
            est.cascading > previous_cascading,
            "cascading deviation must grow with M: {est:?}"
        );
        previous_cascading = est.cascading;
        // PS deviation ≈ D²/M: shrinking in M, never exploding.
        assert!(
            est.ps < 1.2 * previous_ps,
            "PS deviation must not grow with M: {} after {previous_ps}",
            est.ps
        );
        previous_ps = est.ps;
    }
}

/// Marsit's compensation keeps the *compensated iterate* on the SGD path:
/// c_t + Σ applied = Σ intended (the ỹ construction of Theorem 1's proof).
#[test]
fn compensation_telescopes_through_full_algorithm() {
    use marsit::core::{Marsit, MarsitConfig, SyncSchedule};
    let m = 3;
    let d = 16;
    let cfg = MarsitConfig::new(SyncSchedule::never(), 0.01, 11);
    let mut sync = Marsit::new(cfg, m, d);
    let mut rng = FastRng::new(2, 0);
    let mut intended = vec![vec![0.0f64; d]; m];
    let mut applied = vec![0.0f64; d];
    for _ in 0..40 {
        let updates: Vec<Vec<f32>> = (0..m)
            .map(|_| {
                (0..d)
                    .map(|_| 0.02 * (rng.next_f64() as f32 - 0.5))
                    .collect()
            })
            .collect();
        for (acc, u) in intended.iter_mut().zip(&updates) {
            for (a, &x) in acc.iter_mut().zip(u) {
                *a += f64::from(x);
            }
        }
        let out = sync.synchronize(&updates, Topology::ring(m));
        for (a, &g) in applied.iter_mut().zip(&out.global_update) {
            *a += f64::from(g);
        }
    }
    for (w, intended_w) in intended.iter().enumerate() {
        let c = sync.compensation(w).vector();
        for j in 0..d {
            let residual = intended_w[j] - applied[j];
            assert!(
                (residual - f64::from(c[j])).abs() < 1e-3,
                "worker {w} coord {j}: residual {residual} vs c {}",
                c[j]
            );
        }
    }
}
