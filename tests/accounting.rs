//! Wire-bit and simulated-time accounting across crates: the quantities the
//! paper's figures plot must come out with the right shapes.

use marsit::core::SyncSchedule;
use marsit::prelude::*;
use marsit::trainsim::TimingModel;

fn quick(strategy: StrategyKind, topology: Topology, rounds: usize) -> TrainReport {
    let mut cfg = TrainConfig::new(Workload::AlexNetMnist, topology, strategy);
    cfg.rounds = rounds;
    cfg.train_examples = 1024;
    cfg.test_examples = 256;
    cfg.batch_per_worker = 16;
    cfg.eval_every = 0;
    train(&cfg)
}

#[test]
fn wire_width_psgd_is_32_bits() {
    for topology in [Topology::ring(4), Topology::torus(2, 2), Topology::star(4)] {
        let r = quick(StrategyKind::Psgd, topology, 4);
        assert!(
            (r.avg_wire_bits_per_element - 32.0).abs() < 0.01,
            "{topology}: {}",
            r.avg_wire_bits_per_element
        );
    }
}

#[test]
fn wire_width_marsit_is_one_bit() {
    for topology in [Topology::ring(8), Topology::torus(2, 4)] {
        let r = quick(StrategyKind::Marsit { k: None }, topology, 6);
        assert!(
            r.avg_wire_bits_per_element < 1.1,
            "{topology}: {}",
            r.avg_wire_bits_per_element
        );
    }
}

#[test]
fn figure3_bits_column_reproduced_by_measurement() {
    // The measured traffic-weighted wire width must approach the paper's
    // closed-form 1 + 31/K column.
    for (k, expected) in [(1u32, 32.0), (10, 4.1), (25, 2.24)] {
        let r = quick(StrategyKind::Marsit { k: Some(k) }, Topology::ring(4), 50);
        assert!(
            (r.avg_wire_bits_per_element - expected).abs() < 0.35,
            "K={k}: measured {} vs closed form {expected}",
            r.avg_wire_bits_per_element
        );
        assert!(
            (SyncSchedule::every(k).average_bits_per_coord() - expected).abs() < 0.15,
            "closed form itself"
        );
    }
}

#[test]
fn sign_baselines_sit_between_one_and_32_bits() {
    // The ⌈log₂ M⌉ growth: integer-sum MAR payloads are >1 bit but far
    // below fp32.
    for strategy in [
        StrategyKind::SignMajority,
        StrategyKind::Ssdm,
        StrategyKind::EfSign,
    ] {
        let r = quick(strategy, Topology::ring(8), 6);
        assert!(
            r.avg_wire_bits_per_element > 1.2 && r.avg_wire_bits_per_element < 8.0,
            "{strategy}: {}",
            r.avg_wire_bits_per_element
        );
    }
}

#[test]
fn communication_budget_ordering_fig4b() {
    // Per-worker traffic: Marsit ≲ 10% of PSGD and well under the signSGD
    // family (paper: ~90% and ~70% reductions).
    let psgd = quick(StrategyKind::Psgd, Topology::ring(8), 12);
    let sign = quick(StrategyKind::SignMajority, Topology::ring(8), 12);
    let marsit = quick(StrategyKind::Marsit { k: None }, Topology::ring(8), 12);
    let reduction_vs_psgd = 1.0 - marsit.total_bytes as f64 / psgd.total_bytes as f64;
    let reduction_vs_sign = 1.0 - marsit.total_bytes as f64 / sign.total_bytes as f64;
    assert!(reduction_vs_psgd > 0.88, "vs PSGD: {reduction_vs_psgd}");
    assert!(reduction_vs_sign > 0.5, "vs signSGD: {reduction_vs_sign}");
}

#[test]
fn time_shape_fig1a() {
    // Non-compressed RAR < non-compressed PS; SSDM-MAR transmission exceeds
    // its PS version's; cascading codec dominates.
    let model = |topology| TimingModel {
        rates: RateProfile::public_cloud(),
        logical_d: 23_000_000,
        topology,
        flops_per_sample: 2.0e9,
        batch_per_worker: 32,
        overlap: true,
    };
    let ring = model(Topology::ring(8));
    let star = model(Topology::star(8));
    assert!(
        ring.communication_time(StrategyKind::Psgd, true)
            < star.communication_time(StrategyKind::Psgd, true)
    );
    // The growing-width MAR payload must cost well above a strictly one-bit
    // MAR scheme (Section 3.1's motivation for Marsit).
    assert!(
        ring.communication_time(StrategyKind::Ssdm, false)
            > 1.5 * ring.communication_time(StrategyKind::Marsit { k: None }, false)
    );
    let casc = ring.round_time(StrategyKind::Cascading, false);
    let marsit = ring.round_time(StrategyKind::Marsit { k: None }, false);
    assert!(casc.compression_s > 20.0 * marsit.compression_s);
}

#[test]
fn time_shape_fig5_tar_vs_rar() {
    let mk = |topology| TimingModel {
        rates: RateProfile::public_cloud(),
        logical_d: 23_000_000,
        topology,
        flops_per_sample: 2.0e9,
        batch_per_worker: 32,
        overlap: true,
    };
    let rar = mk(Topology::ring(16));
    let tar = mk(Topology::square_torus(16));
    for strategy in [
        StrategyKind::Psgd,
        StrategyKind::SignMajority,
        StrategyKind::EfSign,
        StrategyKind::Ssdm,
        StrategyKind::Marsit { k: None },
    ] {
        assert!(
            tar.communication_time(strategy, false) < rar.communication_time(strategy, false),
            "{strategy}"
        );
    }
    // Marsit has the least communication under both fabrics.
    for m in [&rar, &tar] {
        let marsit = m.communication_time(StrategyKind::Marsit { k: None }, false);
        for strategy in [
            StrategyKind::Psgd,
            StrategyKind::SignMajority,
            StrategyKind::Ssdm,
        ] {
            assert!(marsit < m.communication_time(strategy, false), "{strategy}");
        }
    }
}

#[test]
fn trace_time_consistent_with_closed_form() {
    // The measured trace of a ring fp32 all-reduce must price to the
    // closed-form cost from simnet.
    use marsit::collectives::ring::ring_allreduce_sum;
    use marsit::simnet::cost::ring_allreduce_time;
    let m = 8;
    let d = 4096;
    let mut data: Vec<Vec<f32>> = (0..m).map(|w| vec![w as f32; d]).collect();
    let trace = ring_allreduce_sum(&mut data);
    let link = LinkModel::new(25e-6, 1.25e9);
    let measured = trace.time(link);
    let closed = ring_allreduce_time(link, d * 4, m);
    assert!(
        (measured - closed).abs() / closed < 0.01,
        "measured {measured} vs closed form {closed}"
    );
}
