//! Deterministic checkpoint/restore acceptance tests.
//!
//! A run interrupted at any round, snapshotted, serialized through the
//! `marsit-checkpoint/1` JSON format, and restored into a fresh
//! [`TrainerState`] must be **byte-identical** to the run that never
//! stopped: same `TrainReport` (every word of every record), same RNG draw
//! counts, and the same telemetry JSONL — the restored half appends to the
//! prefix with no fresh `run_meta`, so the concatenation equals the
//! uninterrupted log. Property-tested across topology (ring(8), torus(2,4)),
//! strategy state (Marsit with and without the K-periodic schedule, SSDM),
//! fault plans (clean and crash/rejoin/drop storms), and split points.

use marsit::prelude::*;
use marsit::trainsim::snapshot::SNAPSHOT_SCHEMA;
use proptest::prelude::*;

fn base_cfg(topology: Topology, strategy: StrategyKind) -> TrainConfig {
    let mut cfg = TrainConfig::new(Workload::AlexNetMnist, topology, strategy);
    cfg.rounds = 10;
    cfg.train_examples = 512;
    cfg.test_examples = 128;
    cfg.eval_every = 4;
    cfg.local_lr = 0.1;
    cfg.marsit_global_lr = 0.01;
    cfg.optimizer = OptimizerKind::Momentum(0.9);
    cfg
}

/// The oracle: run uninterrupted; then run to `split`, snapshot, round-trip
/// the snapshot through JSON, restore into a fresh state sharing the same
/// telemetry handle, and finish. Reports and event logs must match exactly.
fn assert_resume_bit_identical(cfg: &TrainConfig, split: usize) {
    let tel_full = Telemetry::recording();
    let mut cfg_full = cfg.clone();
    cfg_full.telemetry = tel_full.clone();
    let full = train(&cfg_full);

    let tel_split = Telemetry::recording();
    let mut cfg_split = cfg.clone();
    cfg_split.telemetry = tel_split.clone();
    let mut state = TrainerState::new(&cfg_split);
    for _ in 0..split {
        state.step();
    }
    let snap = state.snapshot();
    let json = snap.to_json();
    let parsed = TrainSnapshot::from_json(&json).expect("snapshot JSON parses");
    assert_eq!(snap, parsed, "JSON round-trip must be lossless");
    assert_eq!(
        json,
        parsed.to_json(),
        "serialization must be deterministic"
    );
    drop(state);

    let mut resumed = TrainerState::restore(&cfg_split, &parsed);
    assert_eq!(resumed.round(), split);
    while !resumed.is_done() {
        resumed.step();
    }
    let report = resumed.finish();
    assert_eq!(full, report, "resumed report diverged (split at {split})");
    assert_eq!(
        tel_full.events_jsonl(),
        tel_split.events_jsonl(),
        "prefix + resumed telemetry must equal the uninterrupted log"
    );
}

#[test]
fn resume_is_bit_identical_ring_clean_and_faulty() {
    let clean = base_cfg(Topology::ring(8), StrategyKind::Marsit { k: Some(4) });
    assert_resume_bit_identical(&clean, 5);

    let mut faulty = clean.clone();
    faulty.fault_plan = FaultPlan::seeded(31)
        .with_link_drop(0.05)
        .with_straggler(2, 3.0)
        .with_crash_event(3, 2)
        .with_rejoin(3, 6);
    // Split before, at, and after the membership events.
    for split in [1, 4, 7] {
        assert_resume_bit_identical(&faulty, split);
    }
}

#[test]
fn resume_is_bit_identical_torus_clean_and_faulty() {
    let clean = base_cfg(Topology::torus(2, 4), StrategyKind::Marsit { k: None });
    assert_resume_bit_identical(&clean, 3);

    let mut faulty = clean.clone();
    faulty.fault_plan = FaultPlan::seeded(47)
        .with_link_drop(0.05)
        .with_crash_event(5, 3)
        .with_rejoin(5, 7);
    assert_resume_bit_identical(&faulty, 5);
}

/// Shrinks a config to property-test scale: the 64 deterministic cases per
/// property each run ~2.5 short trainings, so keep rounds and data tiny.
fn prop_cfg(topology: Topology, strategy: StrategyKind, seed: u64) -> TrainConfig {
    let mut cfg = base_cfg(topology, strategy);
    cfg.rounds = 6;
    cfg.train_examples = 256;
    cfg.test_examples = 64;
    cfg.eval_every = 3;
    cfg.seed = seed;
    cfg
}

proptest! {
    /// Checkpoint/resume is lossless for random split points across
    /// topologies, Marsit schedules, and clean/faulty plans.
    #[test]
    fn resume_roundtrip_holds_for_random_configs(
        case in any::<u64>(),
        split in 1usize..6,
    ) {
        let torus = case.is_multiple_of(2);
        let with_k = case % 4 < 2;
        let faulty = case % 8 < 4;
        let topology = if torus {
            Topology::torus(2, 2)
        } else {
            Topology::ring(4)
        };
        let k = if with_k { Some(3) } else { None };
        let mut cfg = prop_cfg(topology, StrategyKind::Marsit { k }, case);
        if faulty {
            cfg.fault_plan = FaultPlan::seeded(case ^ 0xC0FFEE)
                .with_link_drop(0.05)
                .with_crash_event(1, 2)
                .with_rejoin(1, 4);
        }
        assert_resume_bit_identical(&cfg, split);
    }

    /// SSDM's velocity buffer checkpoints losslessly too (the non-Marsit
    /// stateful strategy).
    #[test]
    fn ssdm_resume_roundtrip_holds(seed in any::<u64>(), split in 1usize..6) {
        let cfg = prop_cfg(Topology::ring(4), StrategyKind::Ssdm, seed);
        assert_resume_bit_identical(&cfg, split);
    }
}

/// Restoring from a snapshot and continuing does not perturb the state that
/// produced the snapshot: the donor run keeps producing the same rounds.
#[test]
fn snapshot_is_side_effect_free() {
    let cfg = base_cfg(Topology::ring(4), StrategyKind::Marsit { k: Some(4) });
    let baseline = train(&cfg);
    let mut state = TrainerState::new(&cfg);
    for i in 0..cfg.rounds {
        if i == 3 || i == 7 {
            let _ = state.snapshot(); // mid-run captures must be harmless
        }
        state.step();
    }
    assert_eq!(baseline, state.finish());
}

/// Golden fixture pinning the `marsit-checkpoint/1` wire format: a
/// hand-built snapshot serializes to exactly this string. Any change here is
/// a format break and needs a schema bump.
#[test]
fn snapshot_format_golden() {
    use marsit::models::OptimizerState;
    use marsit::trainsim::{SynchronizerSnapshot, SynchronizerState};

    let snap = TrainSnapshot {
        round: 2,
        lr: 0.5,
        params: vec![1.0, -2.0],
        optimizers: vec![
            OptimizerState::Sgd,
            OptimizerState::Momentum {
                velocity: vec![0.5],
            },
        ],
        worker_rngs: vec![(1, 2), (0xABCD, 3)],
        sync: SynchronizerSnapshot {
            round: 2,
            state: SynchronizerState::Marsit(MarsitSnapshot {
                round: 2,
                compensations: vec![vec![0.25], vec![-0.25]],
            }),
        },
        records: vec![],
        total_time: PhaseBreakdown {
            compute_s: 1.0,
            compression_s: 0.0,
            communication_s: 2.0,
        },
        total_bytes: 4096,
        cumulative_bits_per_worker: 16384.0,
        total_elements: 1024,
        diverged: false,
        run_faults: FaultStats::default(),
    };
    let expected = concat!(
        r#"{"schema":"marsit-checkpoint/1","round":2,"lr":"3f000000","#,
        r#""params":"3f800000c0000000","#,
        r#""optimizers":[{"kind":"sgd"},{"kind":"momentum","velocity":"3f000000"}],"#,
        r#""worker_rngs":[["0000000000000001","0000000000000002"],["000000000000abcd","0000000000000003"]],"#,
        r#""sync":{"round":2,"kind":"marsit","marsit_round":2,"compensations":["3e800000","be800000"]},"#,
        r#""records":[],"#,
        r#""total_time":["3ff0000000000000","0000000000000000","4000000000000000"],"#,
        r#""total_bytes":"0000000000001000","#,
        r#""cumulative_bits_per_worker":"40d0000000000000","#,
        r#""total_elements":"0000000000000400","diverged":false,"#,
        r#""run_faults":{"retransmits":"0000000000000000","dropped_transfers":"0000000000000000","#,
        r#""corrupted_transfers":"0000000000000000","repairs":"0000000000000000","#,
        r#""crashed_workers":"0000000000000000","forced_deliveries":"0000000000000000","#,
        r#""rejoins":"0000000000000000","retry_extra_s":"0000000000000000","#,
        r#""catchup_extra_s":"0000000000000000"}}"#,
    );
    assert_eq!(snap.to_json(), expected);
    assert_eq!(
        TrainSnapshot::from_json(expected).expect("golden parses"),
        snap
    );
    assert!(expected.contains(SNAPSHOT_SCHEMA));
}
